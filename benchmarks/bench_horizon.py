"""Ablation A27 — the horizon-fused round engine gate.

PR 10 taught the supervised loop to evaluate maximal fault-free runs
of rounds as fused segments (``repro.protocol.horizon``): per-round
admission/bids/allocation/statistics stay cheap Python + NumPy, the
mechanism pricing of every live round in a segment is one stacked
``(T_seg, n)`` broadcast, and any chaos/remediation event de-fuses to
the sequential ``run_round`` so fault semantics are untouched.  This
bench holds the engine's promises:

* **bit-parity before timing** — every ``RoundResult`` of a fused run
  is compared ``repr``-for-``repr`` against the sequential loop on the
  same seed, across deterministic and stochastic service, both
  nonstationary arrival schedules, a quarantine-churn horizon (alerts
  opening and probing circuits mid-segment), and a chaos plan that
  forces mid-horizon de-fusion.  The timing arms only run once every
  comparison is clean.
* **speed** — on a 1000-round fault-free horizon at n=64 the fused
  engine clears >= 10x rounds/sec over the sequential supervisor loop
  (the sequential arm pays a discrete-event simulator, ~5n messages,
  and a per-bid write-ahead checkpoint per round).
* **drift row** — the stale-bid drift sweep
  (:func:`repro.dynamic.drift.drift_sweep`) scores a same-sized
  horizon as one stacked broadcast, making truthfulness-degradation-
  under-drift benchable end to end (an ungated honesty row).

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_horizon.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_horizon.py
  [--smoke] [--json]``), exiting non-zero on any failed assertion and
  refreshing ``results/ablation_horizon.txt`` and
  ``results/BENCH_horizon.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

SPEEDUP_TARGET = 10.0  # fused vs sequential rounds/sec, fault-free horizon
RESULTS_DIR = Path(__file__).resolve().parent / "results"

_ROUND_FIELDS = (
    "index", "participants", "probes", "quarantined", "excluded", "withheld",
    "alerts", "faulted", "fault_kinds", "voided", "loads", "payments",
    "utilities", "payment_notices", "bid_retries", "report_retries",
    "coordinator_restarts", "arrival_rate", "jobs_routed",
)

_OUTCOME_ARRAYS = (
    ("loads", lambda o: o.loads),
    ("bids", lambda o: o.allocation.bids),
    ("execution_values", lambda o: o.execution_values),
    ("compensation", lambda o: o.payments.compensation),
    ("bonus", lambda o: o.payments.bonus),
    ("valuation", lambda o: o.payments.valuation),
    ("payment", lambda o: o.payments.payment),
    ("utility", lambda o: o.payments.utility),
)


def _make_supervisor(
    *, horizon: bool, n: int, seed: int,
    deterministic: bool = True, schedule: str = "none", slow: bool = False,
):
    from repro.agents import SlowExecutor, TruthfulAgent
    from repro.resilience import RoundSupervisor
    from repro.system.workload import (
        PiecewiseConstantSchedule,
        SinusoidalSchedule,
    )

    rng = np.random.default_rng(123)
    true_values = rng.uniform(1.0, 8.0, size=n)
    agents = [TruthfulAgent(float(t)) for t in true_values]
    if slow:
        # One machine executes 3x slower than it declared: its CUSUM
        # detectors alert, the circuit opens, probes re-admit it —
        # membership churns *inside* the fused horizon.
        agents[-1] = SlowExecutor(float(true_values[-1]), execution_factor=3.0)
    rate = 0.4 * n
    if schedule == "sinusoidal":
        arrival_schedule = SinusoidalSchedule(rate, amplitude=0.6, period=1480.0)
    elif schedule == "piecewise":
        arrival_schedule = PiecewiseConstantSchedule(
            [0.0, 400.0, 1000.0], [0.5 * rate, 1.5 * rate, rate]
        )
    else:
        arrival_schedule = None
    return RoundSupervisor(
        agents,
        rate,
        duration=80.0 if slow else 40.0,
        deterministic_service=deterministic,
        rng=np.random.default_rng(seed),
        arrival_schedule=arrival_schedule,
        horizon=horizon,
    )


def _compare_reports(sequential, fused) -> list[str]:
    """Field-exact (repr-level) RoundResult comparison; [] = identical."""
    mismatches: list[str] = []
    if len(sequential.rounds) != len(fused.rounds):
        return [
            f"round count {len(sequential.rounds)} != {len(fused.rounds)}"
        ]
    for seq_round, fused_round in zip(sequential.rounds, fused.rounds):
        for field in _ROUND_FIELDS:
            if repr(getattr(seq_round, field)) != repr(
                getattr(fused_round, field)
            ):
                mismatches.append(f"round {seq_round.index}: {field}")
        seq_out, fused_out = seq_round.outcome, fused_round.outcome
        if (seq_out is None) != (fused_out is None):
            mismatches.append(f"round {seq_round.index}: outcome presence")
            continue
        if seq_out is None:
            continue
        for name, getter in _OUTCOME_ARRAYS:
            left, right = getter(seq_out), getter(fused_out)
            if left.shape != right.shape or not np.all(left == right):
                mismatches.append(f"round {seq_round.index}: outcome.{name}")
        if repr(float(seq_out.allocation.total_latency)) != repr(
            float(fused_out.allocation.total_latency)
        ):
            mismatches.append(f"round {seq_round.index}: total_latency")
    return mismatches


def verify_parity(*, smoke: bool = False) -> dict:
    """Every parity scenario, fused vs sequential on identical seeds."""
    from repro.resilience import FaultPlan

    rounds = 16 if smoke else 40
    n = 8
    cases = {}

    for label, kwargs in (
        ("clean-deterministic", dict(deterministic=True)),
        ("clean-stochastic", dict(deterministic=False)),
        ("sinusoidal-schedule", dict(schedule="sinusoidal")),
        ("piecewise-stochastic",
         dict(schedule="piecewise", deterministic=False)),
        ("quarantine-churn", dict(slow=True)),
    ):
        case_rounds = rounds * 2 if kwargs.get("slow") else rounds
        seq = _make_supervisor(horizon=False, n=n, seed=7, **kwargs)
        fus = _make_supervisor(horizon=True, n=n, seed=7, **kwargs)
        cases[label] = {
            "rounds": case_rounds,
            "mismatches": _compare_reports(
                seq.run(case_rounds), fus.run(case_rounds)
            ),
        }

    # Chaos plan: injected faults force mid-horizon de-fusion, so the
    # fused run interleaves fused segments with sequential rounds.
    chaos_rounds = 24 if smoke else 50
    seq = _make_supervisor(horizon=False, n=n, seed=17)
    fus = _make_supervisor(horizon=True, n=n, seed=17)
    plan_a = FaultPlan.generate(chaos_rounds, seq.machine_names, seed=99)
    plan_b = FaultPlan.generate(chaos_rounds, fus.machine_names, seed=99)
    seq_report = seq.run(chaos_rounds, plan_a)
    cases["chaos-defusion"] = {
        "rounds": chaos_rounds,
        "faulted_rounds": sum(
            1 for r in seq_report.rounds if r.faulted or r.fault_kinds
        ),
        "mismatches": _compare_reports(
            seq_report, fus.run(chaos_rounds, plan_b)
        ),
    }
    return cases


def measure_throughput(*, smoke: bool = False) -> dict:
    """Fault-free horizon rounds/sec, sequential vs fused, at n=64."""
    # The gate is defined at n=64 (per-round sequential overhead is
    # what fusion amortises, and it grows with n) — smoke keeps the
    # width and only shortens the horizons.
    n = 64
    fused_rounds = 300 if smoke else 1000
    seq_rounds = 40 if smoke else 200  # enough to time the slow arm fairly

    seq = _make_supervisor(horizon=False, n=n, seed=3)
    start = time.perf_counter()
    seq.run(seq_rounds)
    seq_seconds = time.perf_counter() - start

    fus = _make_supervisor(horizon=True, n=n, seed=3)
    start = time.perf_counter()
    fus.run(fused_rounds)
    fused_seconds = time.perf_counter() - start

    seq_rps = seq_rounds / seq_seconds
    fused_rps = fused_rounds / fused_seconds
    return {
        "n": n,
        "sequential_rounds": seq_rounds,
        "fused_rounds": fused_rounds,
        "sequential_rounds_per_sec": seq_rps,
        "fused_rounds_per_sec": fused_rps,
        "speedup": fused_rps / seq_rps,
    }


def measure_drift(*, smoke: bool = False) -> dict:
    """Ungated honesty row: stacked drift sweep over the same horizon."""
    from repro.dynamic.drift import drift_sweep

    n = 16 if smoke else 64
    rounds = 200 if smoke else 1000
    rng = np.random.default_rng(123)
    true_values = rng.uniform(1.0, 8.0, size=n)
    start = time.perf_counter()
    result = drift_sweep(
        true_values, 0.4 * n, rounds=rounds, sigma=0.05, seed=3
    )
    seconds = time.perf_counter() - start
    return {
        "n": n,
        "rounds": rounds,
        "seconds": seconds,
        "rounds_per_sec": rounds / seconds,
        "mean_degradation_pct": result.mean_degradation_pct,
        "max_degradation_pct": result.max_degradation_pct,
        "max_best_response_gain": result.max_gain,
    }


def measure_all(*, smoke: bool = False) -> dict:
    parity = verify_parity(smoke=smoke)
    summary = {
        "parity": parity,
        "speedup_target": SPEEDUP_TARGET,
        "smoke": smoke,
    }
    if any(case["mismatches"] for case in parity.values()):
        # A wrong engine gets no timing row to hide behind.
        summary["throughput"] = None
        summary["drift"] = None
        return summary
    summary["throughput"] = measure_throughput(smoke=smoke)
    summary["drift"] = measure_drift(smoke=smoke)
    return summary


def check_summary(summary: dict) -> list[str]:
    """The bench's assertions; empty list = all good."""
    failures = []
    for label, case in summary["parity"].items():
        if case["mismatches"]:
            shown = ", ".join(case["mismatches"][:4])
            failures.append(
                f"parity {label}: {len(case['mismatches'])} field "
                f"mismatches ({shown}, ...)"
            )
    chaos = summary["parity"].get("chaos-defusion", {})
    if not chaos.get("faulted_rounds"):
        failures.append(
            "chaos plan injected no faults: the de-fusion boundary "
            "path went unexercised"
        )
    throughput = summary.get("throughput")
    if throughput is None:
        failures.append("throughput arm skipped (parity failed)")
    elif throughput["speedup"] < summary["speedup_target"]:
        failures.append(
            f"fused speedup {throughput['speedup']:.1f}x at "
            f"n={throughput['n']} is below {summary['speedup_target']:g}x"
        )
    return failures


def _render(summary: dict) -> str:
    from repro.experiments import render_table

    parity_rows = [
        [
            label,
            case["rounds"],
            case.get("faulted_rounds", 0),
            "identical" if not case["mismatches"]
            else f"{len(case['mismatches'])} DIFFER",
        ]
        for label, case in summary["parity"].items()
    ]
    parts = [
        render_table(
            ["scenario", "rounds", "faulted", "round results"],
            parity_rows,
            title="A27. Horizon-fused engine vs sequential supervisor "
            "loop: bit-parity.",
        )
    ]
    throughput = summary.get("throughput")
    if throughput is not None:
        drift = summary["drift"]
        parts.append(
            render_table(
                ["arm", "n", "rounds", "rounds/sec", "speedup"],
                [
                    [
                        "sequential loop",
                        throughput["n"],
                        throughput["sequential_rounds"],
                        f"{throughput['sequential_rounds_per_sec']:.1f}",
                        "1.0 x",
                    ],
                    [
                        "fused horizon",
                        throughput["n"],
                        throughput["fused_rounds"],
                        f"{throughput['fused_rounds_per_sec']:.1f}",
                        f"{throughput['speedup']:.1f} x",
                    ],
                    [
                        "drift sweep (stacked)",
                        drift["n"],
                        drift["rounds"],
                        f"{drift['rounds_per_sec']:.0f}",
                        "-",
                    ],
                ],
                title=f"Fault-free horizon throughput "
                f"(gate {summary['speedup_target']:g}x) plus the "
                f"stale-bid drift row "
                f"(mean degradation "
                f"{drift['mean_degradation_pct']:.1f}%, max BR gain "
                f"{drift['max_best_response_gain']:.3f}).",
            )
        )
    return "\n\n".join(parts)


def _write_artifacts(summary: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_horizon.txt").write_text(_render(summary) + "\n")
    (RESULTS_DIR / "BENCH_horizon.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )


# --------------------------------------------------------------- pytest


def test_horizon_parity_and_speedup(record_result, record_json):
    summary = measure_all()
    failures = check_summary(summary)
    assert not failures, "; ".join(failures)
    record_result("ablation_horizon", _render(summary))
    record_json("BENCH_horizon", summary)


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run the bench; fail on any broken assertion."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (shorter horizons, n=16)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    parser.add_argument(
        "--no-artifacts", action="store_true",
        help="skip refreshing benchmarks/results/",
    )
    args = parser.parse_args(argv)

    summary = measure_all(smoke=args.smoke)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_render(summary))

    if not args.no_artifacts and not args.smoke:
        _write_artifacts(summary)

    failures = check_summary(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
