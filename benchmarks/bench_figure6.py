"""Figure 6 — payment structure of the mechanism.

Paper shape to reproduce: under truthful play the total payment sits
between 1x (the voluntary-participation floor) and ~2.5x the total
valuation, per computer and in aggregate.  The per-scenario totals show
how lying collapses aggregate payments (the penalty at work) — our
measured complement to the paper's frugality discussion.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    figure6_data,
    figure6_truthful_structure,
    render_table,
    table1_configuration,
)


def test_figure6_truthful_structure(benchmark, record_result):
    structure = benchmark(figure6_truthful_structure)
    names = table1_configuration().cluster.names

    assert np.all(structure["ratio"] >= 1.0)
    assert np.all(structure["ratio"] <= 2.5)

    rows = [
        [names[i], structure["payment"][i], structure["valuation"][i], structure["ratio"][i]]
        for i in range(len(names))
    ]
    record_result(
        "figure6_truthful",
        render_table(
            ["computer", "payment", "|valuation|", "ratio"],
            rows,
            title="Figure 6. Payment structure per computer (True1).",
        ),
    )


def test_figure6_by_scenario(benchmark, record_result):
    data = benchmark(figure6_data)

    true1 = data["True1"]
    assert 1.0 <= true1["ratio"] <= 2.5
    # Lying scenarios collapse aggregate payments (negative bonuses).
    assert data["Low2"]["total_payment"] < data["True1"]["total_payment"]

    rows = [
        [name, row["total_payment"], row["total_valuation"], row["ratio"]]
        for name, row in data.items()
    ]
    record_result(
        "figure6_scenarios",
        render_table(
            ["experiment", "total payment", "total |valuation|", "ratio"],
            rows,
            title="Figure 6 (extended). Aggregate payment structure per experiment.",
        ),
    )
