"""Figure 1 — performance degradation: total latency per experiment.

Paper shape to reproduce: True1 is the minimum (78.43); High2 < High3 <
High1 < High4; Low1 ≈ +11%; Low2 ≈ +66% (the tallest bar).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure1_data, render_table


def test_figure1(benchmark, record_result):
    data = benchmark(figure1_data)

    optimum = data["True1"]
    assert optimum == pytest.approx(78.43, abs=0.005)
    assert data["Low2"] / optimum - 1.0 == pytest.approx(0.66, abs=0.005)
    assert data["Low1"] / optimum - 1.0 == pytest.approx(0.11, abs=0.005)
    assert data["High2"] < data["High3"] < data["High1"] < data["High4"]
    assert min(data.values()) == optimum

    rows = [
        [name, latency, 100.0 * (latency / optimum - 1.0)]
        for name, latency in data.items()
    ]
    record_result(
        "figure1",
        render_table(
            ["experiment", "total latency L", "degradation %"],
            rows,
            title="Figure 1. Performance degradation.",
        ),
    )
