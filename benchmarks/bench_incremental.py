"""Ablation A15 — incremental vs from-scratch aggregate updates.

Repeated settings (learning, dynamic rounds, best-response dynamics)
change one bid per step and need the new optimum and bonus terms.  The
incremental state answers those in O(1) per step; recomputing the sums
from scratch is O(n).  This bench quantifies the gap at growing system
sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import optimal_total_latency
from repro.allocation.incremental import IncrementalPRState
from repro.experiments import render_table

STEPS = 2_000


def _update_stream(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    bids = rng.uniform(0.5, 10.0, size=n)
    indices = rng.integers(0, n, size=STEPS)
    new_bids = rng.uniform(0.5, 10.0, size=STEPS)
    return bids, indices, new_bids


@pytest.mark.parametrize("n", [64, 1024])
def test_incremental_path(benchmark, n):
    bids, indices, new_bids = _update_stream(n)

    def run():
        state = IncrementalPRState(bids.copy(), 20.0)
        total = 0.0
        for i, b in zip(indices, new_bids):
            state.update_bid(int(i), float(b))
            total += state.optimal_latency()
        return total

    result = benchmark(run)
    assert result > 0


@pytest.mark.parametrize("n", [64, 1024])
def test_scratch_path(benchmark, n):
    bids, indices, new_bids = _update_stream(n)

    def run():
        current = bids.copy()
        total = 0.0
        for i, b in zip(indices, new_bids):
            current[int(i)] = b
            total += optimal_total_latency(current, 20.0)
        return total

    result = benchmark(run)
    assert result > 0


def test_paths_agree(benchmark, record_result):
    bids, indices, new_bids = _update_stream(256)
    benchmark(lambda: IncrementalPRState(bids.copy(), 20.0).optimal_latency())
    state = IncrementalPRState(bids.copy(), 20.0)
    current = bids.copy()
    incremental, scratch = [], []
    for i, b in zip(indices, new_bids):
        state.update_bid(int(i), float(b))
        current[int(i)] = b
        incremental.append(state.optimal_latency())
        scratch.append(optimal_total_latency(current, 20.0))
    np.testing.assert_allclose(incremental, scratch, rtol=1e-10)

    record_result(
        "ablation_incremental",
        render_table(
            ["quantity", "value"],
            [
                ["update steps checked", STEPS],
                ["max relative difference",
                 f"{float(np.max(np.abs(np.array(incremental) / np.array(scratch) - 1))):.2e}"],
            ],
            title="A15. Incremental O(1) updates agree with from-scratch O(n).",
        ),
    )
