"""Ablation A21 — closed-form best-response kernel: speedup and exactness.

The vectorized best response (``repro.agents.kernels``) makes two
promises (DESIGN.md §10):

* **identical selections** — with refinement off, the kernel path picks
  the *bit-identical* ``(bid, execution)`` grid pair the brute-force
  scan picks, for every agent, seed, and compensation variant, and the
  reported utilities agree to 1e-9 relative;
* **speed** — at n = 64 the kernel evaluates the whole candidate grid
  >= 10x faster than the one-``Mechanism.run``-per-cell scan, and its
  cost stays flat (O(n + grid)) out to n = 4096, where the brute path
  (O(n * grid)) is no longer worth timing.

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_best_response.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_best_response.py
  [--smoke] [--json]``), exiting non-zero on any failed assertion and
  refreshing ``results/ablation_best_response.txt`` and
  ``results/BENCH_best_response.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

SPEEDUP_TARGET = 10.0          # kernel vs brute force at n = 64
UTILITY_TOLERANCE = 1e-9       # relative agreement of reported utilities
SCALING_NS = (16, 64, 256, 1024, 4096)
BRUTE_MAX_N = 64               # largest n worth timing the brute path at
AGREEMENT_SEEDS = (0, 1, 2)
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _system(n: int, seed: int) -> tuple[np.ndarray, float]:
    rng = np.random.default_rng(20030422 + seed)
    true_values = rng.uniform(0.5, 10.0, n)
    return true_values, 0.5 * n


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_best_response(
    *,
    ns: tuple[int, ...] = SCALING_NS,
    brute_max_n: int = BRUTE_MAX_N,
    repeats: int = 3,
    agreement_seeds: tuple[int, ...] = AGREEMENT_SEEDS,
) -> dict:
    """Agreement sweep at n = 64 plus the fast-path scaling curve.

    Both timing arms run with ``refine=False`` so they execute the
    exact same grid search (the refinement stage is method-independent
    polish) and their selections can be compared bit-for-bit.
    """
    from repro.agents import best_response
    from repro.mechanism import VerificationMechanism

    # ---- exactness: brute vs kernel over seeds x variants x agents
    cases = 0
    selections_identical = True
    max_utility_error = 0.0
    truthful_agreement = True
    n_agree = min(64, max(ns))
    for seed in agreement_seeds:
        true_values, arrival_rate = _system(n_agree, seed)
        for compensation in ("observed", "declared"):
            mechanism = VerificationMechanism(compensation)
            for agent in (0, n_agree // 2, n_agree - 1):
                brute = best_response(
                    mechanism, true_values, arrival_rate, agent,
                    method="bruteforce", refine=False,
                )
                fast = best_response(
                    mechanism, true_values, arrival_rate, agent,
                    method="vectorized", refine=False,
                )
                cases += 1
                if (brute.bid, brute.execution_value) != (
                    fast.bid, fast.execution_value
                ):
                    selections_identical = False
                scale = max(1.0, abs(brute.utility))
                max_utility_error = max(
                    max_utility_error, abs(brute.utility - fast.utility) / scale
                )
                if brute.is_truthful != fast.is_truthful:
                    truthful_agreement = False

    # ---- scaling curve: kernel everywhere, brute only where affordable
    scaling = []
    speedup_at_64 = None
    for n in ns:
        true_values, arrival_rate = _system(n, 0)
        mechanism = VerificationMechanism("observed")
        agent = n // 2

        def fast_call():
            best_response(
                mechanism, true_values, arrival_rate, agent,
                method="vectorized", refine=False,
            )

        fast_seconds = _best_seconds(fast_call, repeats)
        brute_seconds = None
        speedup = None
        if n <= brute_max_n:

            def brute_call():
                best_response(
                    mechanism, true_values, arrival_rate, agent,
                    method="bruteforce", refine=False,
                )

            brute_seconds = _best_seconds(brute_call, repeats)
            speedup = brute_seconds / fast_seconds
            if n == 64:
                speedup_at_64 = speedup
        scaling.append(
            {
                "n": n,
                "fast_seconds": fast_seconds,
                "brute_seconds": brute_seconds,
                "speedup": speedup,
            }
        )

    return {
        "grid": {"scan_points": 48, "exec_points": 8},
        "agreement": {
            "n": n_agree,
            "seeds": list(agreement_seeds),
            "cases": cases,
            "selections_identical": selections_identical,
            "max_relative_utility_error": max_utility_error,
            "truthful_verdicts_agree": truthful_agreement,
            "utility_tolerance": UTILITY_TOLERANCE,
        },
        "scaling": scaling,
        "speedup_at_64": speedup_at_64,
        "speedup_target": SPEEDUP_TARGET,
    }


def check_summary(summary: dict) -> list[str]:
    """The bench's assertions; empty list = all good."""
    failures = []
    agreement = summary["agreement"]
    if not agreement["selections_identical"]:
        failures.append(
            "kernel and brute-force grid selections differ "
            f"({agreement['cases']} cases checked)"
        )
    if agreement["max_relative_utility_error"] > UTILITY_TOLERANCE:
        failures.append(
            "utility agreement "
            f"{agreement['max_relative_utility_error']:.3e} exceeds "
            f"{UTILITY_TOLERANCE:g}"
        )
    if not agreement["truthful_verdicts_agree"]:
        failures.append("truthfulness verdicts differ between methods")
    speedup = summary["speedup_at_64"]
    if speedup is not None and speedup < SPEEDUP_TARGET:
        failures.append(
            f"kernel speedup {speedup:.1f}x at n=64 is below "
            f"{SPEEDUP_TARGET:g}x"
        )
    return failures


def _render(summary: dict) -> str:
    from repro.experiments import render_table

    def seconds(value):
        return "-" if value is None else f"{value * 1e3:.3f} ms"

    rows = [
        [
            row["n"],
            seconds(row["fast_seconds"]),
            seconds(row["brute_seconds"]),
            "-" if row["speedup"] is None else f"{row['speedup']:.1f} x",
        ]
        for row in summary["scaling"]
    ]
    agreement = summary["agreement"]
    rows.append(["", "", "", ""])
    rows.append(
        [
            f"agreement ({agreement['cases']} cases)",
            "identical" if agreement["selections_identical"] else "DIFFER",
            f"u err {agreement['max_relative_utility_error']:.1e}",
            f"target {summary['speedup_target']:g} x",
        ]
    )
    return render_table(
        ["n", "kernel", "brute force", "speedup"],
        rows,
        title="A21. Closed-form best-response kernel vs per-cell mechanism runs.",
    )


def _write_artifacts(summary: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_best_response.txt").write_text(
        _render(summary) + "\n"
    )
    (RESULTS_DIR / "BENCH_best_response.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )


# --------------------------------------------------------------- pytest


def test_kernel_speedup_and_exactness(record_result, record_json):
    summary = measure_best_response()
    failures = check_summary(summary)
    assert not failures, "; ".join(failures)
    record_result("ablation_best_response", _render(summary))
    record_json("BENCH_best_response", summary)


def test_refined_paths_agree_on_the_paper_system():
    # With refinement on, selections may differ in the last few ulps
    # (different floating-point op order), but the achieved utilities
    # and the truthfulness verdicts must still coincide.
    from repro.agents import best_response
    from repro.mechanism import VerificationMechanism
    from repro.system import paper_cluster
    from repro.system.cluster import PAPER_ARRIVAL_RATE

    cluster = paper_cluster()
    for compensation in ("observed", "declared"):
        mechanism = VerificationMechanism(compensation)
        for agent in (0, 7, 15):
            brute = best_response(
                mechanism, cluster.true_values,
                PAPER_ARRIVAL_RATE, agent, method="bruteforce",
            )
            fast = best_response(
                mechanism, cluster.true_values,
                PAPER_ARRIVAL_RATE, agent, method="vectorized",
            )
            scale = max(1.0, abs(brute.utility))
            assert abs(brute.utility - fast.utility) / scale < 1e-7
            assert brute.is_truthful == fast.is_truthful


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run the bench; fail on any broken assertion."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (scaling stops at n=256, 1 seed)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    parser.add_argument(
        "--no-artifacts", action="store_true",
        help="skip refreshing benchmarks/results/",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        summary = measure_best_response(
            ns=(16, 64, 256), repeats=2, agreement_seeds=(0,)
        )
    else:
        summary = measure_best_response()

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_render(summary))

    if not args.no_artifacts and not args.smoke:
        _write_artifacts(summary)

    failures = check_summary(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
