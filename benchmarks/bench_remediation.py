"""Ablation A23 — what closed-loop remediation buys: MTTR.

Runs the seeded degradation scenarios of
:mod:`repro.remediation.mttr` twice — remediation **on** and **off** —
and measures the mean time to recovery: rounds from fault onset until
the verification gap (realised / allocation-promised latency) is back
within tolerance of 1.  The acceptance gate is the issue's headline
claim:

* remediation-on MTTR at least **2x** better than remediation-off, and
* **zero** invariant violations caused by applied actions.

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_remediation.py --benchmark-only``);
* standalone as the CI smoke gate
  (``PYTHONPATH=src python benchmarks/bench_remediation.py --smoke``),
  which exits non-zero if either gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

MTTR_IMPROVEMENT_GATE = 2.0


def run_comparison(seed: int, *, smoke: bool = False) -> dict:
    """Run the A23 scenario suite; return a JSON-ready summary."""
    from repro.remediation import default_scenarios, measure_mttr

    scenarios = default_scenarios()
    if smoke:
        scenarios = scenarios[:1]  # creeping-slowdown only
    comparison = measure_mttr(scenarios, seed=seed)

    per_scenario = []
    for on, off in zip(comparison.runs_on, comparison.runs_off):
        per_scenario.append(
            {
                "scenario": on.scenario,
                "mttr_on": on.mttr_rounds,
                "mttr_off": off.mttr_rounds,
                "recovered_on": on.recovered,
                "recovered_off": off.recovered,
                "actions_applied": on.actions_applied,
                "actions_rejected": on.actions_rejected,
                "violations_on": on.violations,
                "violations_off": off.violations,
            }
        )
    return {
        "seed": seed,
        "smoke": smoke,
        "scenarios": per_scenario,
        "mttr_on": comparison.mttr_on,
        "mttr_off": comparison.mttr_off,
        "improvement": comparison.improvement,
        "improvement_gate": MTTR_IMPROVEMENT_GATE,
        "violations_from_actions": comparison.violations_from_actions,
        "gate_passed": (
            comparison.improvement >= MTTR_IMPROVEMENT_GATE
            and comparison.violations_from_actions == 0
        ),
    }


# --------------------------------------------------------------- pytest


def test_mttr_improvement_gate(benchmark, record_result, record_json):
    summary = benchmark.pedantic(
        run_comparison, args=(0,), rounds=1, iterations=1
    )
    assert summary["violations_from_actions"] == 0
    assert summary["improvement"] >= MTTR_IMPROVEMENT_GATE
    # Remediation must actually have acted, not won by accident.
    assert all(s["actions_applied"] > 0 for s in summary["scenarios"])
    assert all(s["recovered_on"] for s in summary["scenarios"])

    from repro.experiments import render_table

    rows = [
        [
            s["scenario"],
            s["mttr_off"],
            s["mttr_on"],
            s["actions_applied"],
            s["actions_rejected"],
            s["violations_on"],
        ]
        for s in summary["scenarios"]
    ]
    record_result(
        "ablation_remediation_mttr",
        render_table(
            ["scenario", "MTTR off", "MTTR on", "applied", "rejected",
             "violations"],
            rows,
            title=(
                "A23. MTTR with/without closed-loop remediation "
                f"(improvement {summary['improvement']:.1f}x, gate "
                f">= {MTTR_IMPROVEMENT_GATE:.0f}x)."
            ),
        ),
    )
    record_json("BENCH_remediation", summary)


def test_every_applied_action_was_shadow_verified():
    # Structural guarantee behind the zero-violation gate: nothing is
    # applied without a prior accepting shadow verdict.
    from repro.remediation import default_scenarios, run_scenario

    run = run_scenario(default_scenarios()[0], remediation=True, seed=0)
    assert run.report is not None
    # Re-run the pipeline-attached history via the supervisor is not
    # possible post-hoc, so assert via the recorded run: applied > 0,
    # and zero rejected actions ever reached application.
    assert run.actions_applied > 0
    assert run.violations == 0


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run the comparison and fail on a missed gate."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast gate sized for CI (first scenario only)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    args = parser.parse_args(argv)

    summary = run_comparison(args.seed, smoke=args.smoke)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for s in summary["scenarios"]:
            print(
                f"{s['scenario']:24} MTTR off {s['mttr_off']:5.1f}  "
                f"on {s['mttr_on']:5.1f}  applied {s['actions_applied']}  "
                f"rejected {s['actions_rejected']}  "
                f"violations {s['violations_on']}"
            )
        print(
            f"{'improvement':24} {summary['improvement']:.2f}x "
            f"(gate >= {MTTR_IMPROVEMENT_GATE:.0f}x)"
        )
        print(f"{'violations_from_actions':24} "
              f"{summary['violations_from_actions']}")

    if not summary["gate_passed"]:
        print(
            "GATE FAILED: improvement "
            f"{summary['improvement']:.2f}x (need >= "
            f"{MTTR_IMPROVEMENT_GATE:.0f}x), violations "
            f"{summary['violations_from_actions']} (need 0)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
