"""Ablation A10 — re-bid cadence under drifting machine speeds.

The paper's mechanism is one-shot.  In deployment, machine speeds
drift, and the operator must choose how often to re-run the bidding
round: staleness cost (latency above the clairvoyant optimum) against
control traffic (5n messages per round).  This bench maps the
trade-off for both drift models on the Table 1 system.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic import (
    GeometricRandomWalkDrift,
    RegimeSwitchDrift,
    RepeatedMechanismSimulation,
)
from repro.experiments import render_table, table1_configuration

EPOCHS = 400


def _sweep(drift_factory) -> list[list[object]]:
    config = table1_configuration()
    rows = []
    for period in (1, 2, 5, 10, 25, 50):
        sim = RepeatedMechanismSimulation(
            config.cluster.true_values,
            config.arrival_rate,
            drift_factory(),
            rebid_period=period,
        )
        records = sim.run(EPOCHS)
        rows.append(
            [
                period,
                RepeatedMechanismSimulation.mean_staleness(records),
                RepeatedMechanismSimulation.total_messages(records),
            ]
        )
    return rows


def test_random_walk_staleness(benchmark, record_result):
    rows = benchmark(
        _sweep, lambda: GeometricRandomWalkDrift(0.1, np.random.default_rng(1))
    )

    staleness = [row[1] for row in rows]
    messages = [row[2] for row in rows]
    assert staleness[0] == 1.0  # re-bidding every epoch is clairvoyant
    assert staleness == sorted(staleness)  # longer periods, more staleness
    assert messages == sorted(messages, reverse=True)

    record_result(
        "ablation_dynamic_walk",
        render_table(
            ["re-bid period", "mean staleness ratio", "control messages"],
            rows,
            precision=4,
            title="A10a. Staleness vs traffic, 10% random-walk drift.",
        ),
    )


def test_regime_switch_staleness(benchmark, record_result):
    rows = benchmark(
        _sweep,
        lambda: RegimeSwitchDrift(0.1, np.random.default_rng(2), t_range=(1.0, 10.0)),
    )

    staleness = [row[1] for row in rows]
    assert staleness[0] == 1.0
    assert staleness[-1] > staleness[0]

    record_result(
        "ablation_dynamic_switch",
        render_table(
            ["re-bid period", "mean staleness ratio", "control messages"],
            rows,
            precision=4,
            title="A10b. Staleness vs traffic, 10%/epoch regime switches.",
        ),
    )
