"""Ablation A6 — the end-to-end simulated protocol vs the closed form.

Runs the full discrete-event protocol (bids, allocation, Poisson job
stream, execution, completion-based verification, payments) on the
Table 1 system and compares the simulated round against the closed-form
mechanism.  Also times a protocol round — the performance cost of
simulating what the paper computes analytically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import ManipulativeAgent, TruthfulAgent
from repro.experiments import render_table, table1_configuration
from repro.mechanism import VerificationMechanism
from repro.protocol import run_protocol


def _agents(manipulate_c1: bool):
    config = table1_configuration()
    agents = [TruthfulAgent(t) for t in config.cluster.true_values]
    if manipulate_c1:
        agents[0] = ManipulativeAgent(1.0, bid_factor=0.5, execution_factor=2.0)
    return agents


def test_protocol_round_truthful(benchmark, record_result):
    config = table1_configuration()
    agents = _agents(manipulate_c1=False)

    result = benchmark(
        run_protocol, agents, config.arrival_rate,
        duration=200.0, rng=np.random.default_rng(3),
    )

    closed = VerificationMechanism().run(
        config.cluster.true_values, config.arrival_rate
    )
    assert result.outcome.realised_latency == pytest.approx(
        closed.realised_latency, rel=0.1
    )
    assert result.network.total_messages == 5 * 16

    rows = [
        ["realised latency L", closed.realised_latency, result.outcome.realised_latency],
        ["total payment", closed.payments.total_payment, result.outcome.payments.total_payment],
        ["frugality ratio", closed.frugality_ratio, result.outcome.frugality_ratio],
        ["control messages", 5 * 16, result.network.total_messages],
    ]
    record_result(
        "ablation_protocol_truthful",
        render_table(
            ["quantity", "closed form", "simulated protocol"],
            rows,
            title="A6a. Truthful round: closed form vs simulated protocol.",
        ),
    )


def test_protocol_round_with_liar(benchmark, record_result):
    config = table1_configuration()
    agents = _agents(manipulate_c1=True)

    result = benchmark(
        run_protocol, agents, config.arrival_rate,
        duration=400.0, rng=np.random.default_rng(4),
    )

    bids = np.array([a.bid() for a in agents])
    executions = np.array([a.execution_value() for a in agents])
    closed = VerificationMechanism().run(bids, config.arrival_rate, executions)

    # The protocol's estimated execution values land near the truth and
    # the liar's simulated utility is negative, as in the closed form.
    assert result.estimated_execution_values[0] == pytest.approx(2.0, rel=0.2)
    assert result.outcome.payments.utility[0] < 0.0

    rows = [
        ["estimated t̃1", 2.0, float(result.estimated_execution_values[0])],
        ["C1 utility", float(closed.payments.utility[0]),
         float(result.outcome.payments.utility[0])],
        ["realised L", closed.realised_latency, result.outcome.realised_latency],
    ]
    record_result(
        "ablation_protocol_liar",
        render_table(
            ["quantity", "closed form", "simulated protocol"],
            rows,
            title="A6b. Low2 round: verification catches the slow executor.",
        ),
    )
