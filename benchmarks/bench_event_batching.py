"""Ablation A22 — batched job-event execution engine: speedup and parity.

The batched protocol engine (``repro.protocol.execution``) makes two
promises (DESIGN.md §11):

* **bit-identity** — with ``deterministic_service=True`` a batched
  round reproduces the event engine's ``ProtocolResult`` exactly: the
  same estimated execution values, loads, payments, final clock, job
  count, and message count, with and without lossy links;
* **speed** — at the paper's 16 machines with R = 76 and a 200-second
  window (~15k jobs) the batched round is >= 10x faster than the
  two-heap-events-per-job path, and the gap widens with the window
  (the batched cost is dominated by the O(n) control phase, the event
  cost by the O(jobs log jobs) heap).

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_event_batching.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_event_batching.py
  [--smoke] [--json]``), exiting non-zero on any failed assertion and
  refreshing ``results/ablation_event_batching.txt`` and
  ``results/BENCH_event_batching.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

SPEEDUP_TARGET = 10.0            # batched vs event at the target round
ARRIVAL_RATE = 76.0              # ~15k jobs over the 200 s target window
TARGET_DURATION = 200.0
SCALING_DURATIONS = (200.0, 500.0, 1000.0, 2000.0, 5000.0)
EVENT_MAX_DURATION = 5000.0      # the event path stays affordable throughout
PARITY_DROPS = (0.0, 0.2)        # parity must also hold over lossy links
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _agents():
    from repro.agents import TruthfulAgent
    from repro.system.cluster import paper_cluster

    return [TruthfulAgent(t) for t in paper_cluster().true_values]


def _round(execution: str, *, duration: float, seed: int,
           deterministic: bool, drop: float = 0.0):
    from repro.protocol import run_protocol

    return run_protocol(
        _agents(),
        ARRIVAL_RATE,
        duration=duration,
        rng=np.random.default_rng(seed),
        deterministic_service=deterministic,
        drop_probability=drop,
        execution=execution,
    )


def _identical(event, batched) -> bool:
    return (
        np.array_equal(
            event.estimated_execution_values, batched.estimated_execution_values
        )
        and np.array_equal(event.outcome.loads, batched.outcome.loads)
        and np.array_equal(
            event.outcome.payments.payment, batched.outcome.payments.payment
        )
        and event.outcome.realised_latency == batched.outcome.realised_latency
        and event.jobs_routed == batched.jobs_routed
        and event.simulated_time == batched.simulated_time
        and event.network.total_messages == batched.network.total_messages
    )


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_event_batching(
    *,
    durations: tuple[float, ...] = SCALING_DURATIONS,
    event_max_duration: float = EVENT_MAX_DURATION,
    repeats: int = 3,
    parity_drops: tuple[float, ...] = PARITY_DROPS,
) -> dict:
    """Deterministic parity checks plus the duration scaling curve.

    Parity runs with ``deterministic_service=True`` (the regime where
    the contract is bit-identity); the timing arms run with the default
    stochastic service so they measure the engines as campaigns use
    them.
    """
    # ---- parity: the batched round must be the same computation
    parity = []
    for drop in parity_drops:
        event = _round("event", duration=TARGET_DURATION, seed=0,
                       deterministic=True, drop=drop)
        batched = _round("batched", duration=TARGET_DURATION, seed=0,
                         deterministic=True, drop=drop)
        parity.append(
            {
                "drop_probability": drop,
                "jobs": event.jobs_routed,
                "bit_identical": _identical(event, batched),
            }
        )

    # ---- scaling: batched everywhere, event wherever affordable
    scaling = []
    speedup_at_target = None
    for duration in durations:

        def batched_call():
            _round("batched", duration=duration, seed=1, deterministic=False)

        batched_seconds = _best_seconds(batched_call, repeats)
        jobs = _round(
            "batched", duration=duration, seed=1, deterministic=False
        ).jobs_routed
        event_seconds = None
        speedup = None
        if duration <= event_max_duration:

            def event_call():
                _round("event", duration=duration, seed=1, deterministic=False)

            event_seconds = _best_seconds(event_call, repeats)
            speedup = event_seconds / batched_seconds
            if duration == TARGET_DURATION:
                speedup_at_target = speedup
        scaling.append(
            {
                "duration": duration,
                "jobs": jobs,
                "batched_seconds": batched_seconds,
                "event_seconds": event_seconds,
                "speedup": speedup,
            }
        )

    return {
        "system": {
            "machines": 16,
            "arrival_rate": ARRIVAL_RATE,
            "target_duration": TARGET_DURATION,
        },
        "parity": parity,
        "scaling": scaling,
        "speedup_at_target": speedup_at_target,
        "speedup_target": SPEEDUP_TARGET,
    }


def check_summary(summary: dict) -> list[str]:
    """The bench's assertions; empty list = all good."""
    failures = []
    for case in summary["parity"]:
        if not case["bit_identical"]:
            failures.append(
                "batched round differs from the event round under "
                f"deterministic service (drop={case['drop_probability']:g}, "
                f"{case['jobs']} jobs)"
            )
    speedup = summary["speedup_at_target"]
    if speedup is None:
        failures.append("the target round was never timed against the event path")
    elif speedup < SPEEDUP_TARGET:
        failures.append(
            f"batched speedup {speedup:.1f}x at duration="
            f"{summary['system']['target_duration']:g} is below "
            f"{SPEEDUP_TARGET:g}x"
        )
    return failures


def _render(summary: dict) -> str:
    from repro.experiments import render_table

    def seconds(value):
        return "-" if value is None else f"{value * 1e3:.1f} ms"

    rows = [
        [
            f"{row['duration']:g}",
            row["jobs"],
            seconds(row["batched_seconds"]),
            seconds(row["event_seconds"]),
            "-" if row["speedup"] is None else f"{row['speedup']:.1f} x",
        ]
        for row in summary["scaling"]
    ]
    rows.append(["", "", "", "", ""])
    for case in summary["parity"]:
        rows.append(
            [
                f"parity drop={case['drop_probability']:g}",
                case["jobs"],
                "identical" if case["bit_identical"] else "DIFFER",
                "",
                f"target {summary['speedup_target']:g} x",
            ]
        )
    return render_table(
        ["duration (s)", "jobs", "batched", "event engine", "speedup"],
        rows,
        title="A22. Batched job-event execution engine vs per-job heap events.",
    )


def _write_artifacts(summary: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_event_batching.txt").write_text(
        _render(summary) + "\n"
    )
    (RESULTS_DIR / "BENCH_event_batching.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )


# --------------------------------------------------------------- pytest


def test_batched_engine_speedup_and_parity(record_result, record_json):
    summary = measure_event_batching(
        durations=(200.0, 500.0, 1000.0), repeats=2
    )
    failures = check_summary(summary)
    assert not failures, "; ".join(failures)
    record_result("ablation_event_batching", _render(summary))
    record_json("BENCH_event_batching", summary)


def test_campaign_default_routes_through_the_batched_engine():
    # ExperimentUnit("auto") must resolve to the batched engine, so
    # cached campaign payloads are keyed on what actually ran.
    from repro.parallel.units import ExperimentUnit
    from repro.system.cluster import paper_cluster

    unit = ExperimentUnit(
        kind="protocol", scenario="True1", bid_factor=1.0,
        execution_factor=1.0,
        true_values=tuple(paper_cluster().true_values.tolist()),
        arrival_rate=20.0, seed=0, duration=20.0,
    )
    assert unit.execution == "batched"
    assert unit.as_config()["execution"] == "batched"


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run the bench; fail on any broken assertion."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (target duration only, 2 repeats)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    parser.add_argument(
        "--no-artifacts", action="store_true",
        help="skip refreshing benchmarks/results/",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        summary = measure_event_batching(
            durations=(TARGET_DURATION,), repeats=2, parity_drops=(0.0,)
        )
    else:
        summary = measure_event_batching()

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_render(summary))

    if not args.no_artifacts and not args.smoke:
        _write_artifacts(summary)

    failures = check_summary(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
