"""Ablation A24 — sharded coordinator: rounds/sec vs agent count.

The sharded service exists because the monolithic coordinator routes
every bid, report, and payment through one discrete-event message loop:
a round costs ~5 heap events *per agent* and the coordinator becomes
the bottleneck long before the mechanism's math does.  Sharding turns
the round into four batched stages whose cross-shard traffic is two
scalars per shard up an aggregation tree (docs/distributed.md), so the
per-agent work collapses to vectorised NumPy plus an O(1) write-ahead
journal entry per payment.

Claims gated here (DESIGN.md §13):

* **parity first** — before timing anything, one sharded round must be
  bit-identical to the monolithic path on the same seed (speed born of
  a different answer is a bug, not a win);
* **>= 3x rounds/sec at 4 shards** for n >= 10_000 agents versus the
  monolithic ``run_protocol`` path, on every machine including 1-core
  CI — the speedup is architectural (batched stages vs per-agent
  events), not parallelism, so it must show up without extra cores.

The sweep sizes the service up to n = 10^6 in ``--full`` mode (the
baseline is capped at 10^5; beyond that a single monolithic round
takes minutes and measures patience, not architecture).

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_sharded.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_sharded.py
  [--smoke] [--json]``), exiting non-zero when a gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SPEEDUP_TARGET = 3.0      # service rounds/sec vs monolithic, at GATE_N+
GATE_N = 10_000           # smallest n where the >= 3x gate applies
SHARDS = 4                # the gated configuration
RATE = 64.0               # jobs/sec: ~640 jobs per round, n-independent
DURATION = 10.0           # short windows keep coordination dominant
SMOKE_NS = (1_000, 10_000)
FULL_NS = (1_000, 10_000, 100_000, 1_000_000)
MAX_BASELINE_N = 100_000  # monolithic rounds beyond this take minutes
SERVICE_ROUNDS = 2        # amortise setup; the service is long-lived


def _tiled_values(n: int):
    import numpy as np

    from repro.system.cluster import paper_cluster

    base = np.asarray(paper_cluster().true_values)
    return np.tile(base, (n + base.size - 1) // base.size)[:n]


def _agents(values):
    from repro.agents import TruthfulAgent

    return [TruthfulAgent(t) for t in values]


def _assert_parity(n: int, seed: int = 7) -> bool:
    """One sharded round must equal the monolithic round bit-for-bit."""
    import numpy as np

    from repro.distributed import ShardedCoordinatorService
    from repro.protocol import run_protocol

    values = _tiled_values(n)
    mono = run_protocol(
        _agents(values), RATE, duration=DURATION,
        rng=np.random.default_rng(seed), deterministic_service=True,
    )
    service = ShardedCoordinatorService(
        _agents(values), RATE, shards=SHARDS, duration=DURATION,
        rng=np.random.default_rng(seed),
    )
    try:
        result = service.run_round()
    finally:
        service.close()
    return (
        np.array_equal(
            result.outcome.payments.payment, mono.outcome.payments.payment
        )
        and result.jobs_routed == mono.jobs_routed
    )


def measure_throughput(
    ns=SMOKE_NS, *, shards: int = SHARDS, max_baseline_n: int = MAX_BASELINE_N
) -> dict:
    """Rounds/sec for the sharded service vs the monolithic path.

    The baseline is the best of ``SERVICE_ROUNDS`` ``run_protocol``
    rounds per n (it is stateless, so one round *is* its steady
    state).  The service is timed per-round over the same count of
    consecutive rounds after construction — a long-lived service
    amortises machine setup across its lifetime — and best-of is used
    on both sides: minima compare architectures, means compare noise.
    """
    import numpy as np

    from repro.distributed import ShardedCoordinatorService
    from repro.protocol import run_protocol

    points = []
    for n in ns:
        values = _tiled_values(n)
        point: dict = {"n": int(n)}

        if n <= max_baseline_n:
            agents = _agents(values)
            mono_seconds = []
            for _ in range(SERVICE_ROUNDS):
                start = time.perf_counter()
                run_protocol(
                    agents, RATE, duration=DURATION,
                    rng=np.random.default_rng(0),
                    deterministic_service=True,
                )
                mono_seconds.append(time.perf_counter() - start)
            point["monolithic_seconds_per_round"] = min(mono_seconds)
            point["monolithic_rounds_per_sec"] = 1.0 / min(mono_seconds)
        else:
            point["monolithic_seconds_per_round"] = None
            point["monolithic_rounds_per_sec"] = None

        service = ShardedCoordinatorService(
            _agents(values), RATE, shards=shards, duration=DURATION,
            rng=np.random.default_rng(0),
        )
        try:
            service_seconds = []
            for _ in range(SERVICE_ROUNDS):
                start = time.perf_counter()
                service.run_round()
                service_seconds.append(time.perf_counter() - start)
        finally:
            service.close()
        point["service_seconds_per_round"] = min(service_seconds)
        point["service_rounds_per_sec"] = 1.0 / min(service_seconds)

        if point["monolithic_seconds_per_round"] is not None:
            point["speedup"] = (
                point["monolithic_seconds_per_round"]
                / point["service_seconds_per_round"]
            )
        else:
            point["speedup"] = None
        points.append(point)

    gated = [
        p for p in points
        if p["n"] >= GATE_N and p["speedup"] is not None
    ]
    return {
        "shards": shards,
        "arrival_rate": RATE,
        "duration": DURATION,
        "service_rounds": SERVICE_ROUNDS,
        "points": points,
        "parity_bit_identical": _assert_parity(min(ns)),
        "speedup_target": SPEEDUP_TARGET,
        "gate_n": GATE_N,
        "gated_points": len(gated),
        "speedup_met": bool(gated)
        and all(p["speedup"] >= SPEEDUP_TARGET for p in gated),
    }


def check_summary(summary: dict) -> list[str]:
    """The A24 gates; empty = all good."""
    failures = []
    if not summary["parity_bit_identical"]:
        failures.append("sharded round is not bit-identical to monolithic")
    if not summary["gated_points"]:
        failures.append(f"no measured point at n >= {GATE_N}")
    elif not summary["speedup_met"]:
        worst = min(
            p["speedup"] for p in summary["points"]
            if p["n"] >= GATE_N and p["speedup"] is not None
        )
        failures.append(
            f"sharded speedup {worst:.2f}x < {SPEEDUP_TARGET:g}x "
            f"at {summary['shards']} shards for n >= {GATE_N}"
        )
    return failures


# --------------------------------------------------------------- pytest


def test_sharded_throughput_gate(record_result, record_json):
    summary = measure_throughput(SMOKE_NS)
    failures = check_summary(summary)
    assert not failures, "; ".join(failures)

    from repro.experiments import render_table

    rows = []
    for p in summary["points"]:
        rows.append([
            f"{p['n']:,}",
            "-" if p["monolithic_rounds_per_sec"] is None
            else f"{p['monolithic_rounds_per_sec']:.2f}",
            f"{p['service_rounds_per_sec']:.2f}",
            "-" if p["speedup"] is None else f"{p['speedup']:.2f} x",
        ])
    rows.append([
        "parity", "", "",
        "bit-identical" if summary["parity_bit_identical"] else "BROKEN",
    ])
    record_result(
        "ablation_sharded",
        render_table(
            ["agents", "monolithic rounds/s",
             f"{summary['shards']}-shard rounds/s", "speedup"],
            rows,
            title=(
                "A24. Sharded coordinator service: rounds/sec vs agent "
                f"count (gate >= {SPEEDUP_TARGET:g}x at n >= {GATE_N:,})."
            ),
        ),
    )
    record_json("ablation_sharded", summary)
    record_json("BENCH_sharded", summary)


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run the bench; fail on any gate violation."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (n up to 10^4)",
    )
    parser.add_argument("--shards", type=int, default=SHARDS)
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    parser.add_argument(
        "--no-artifacts", action="store_true",
        help="skip refreshing results/BENCH_sharded.json",
    )
    args = parser.parse_args(argv)

    ns = SMOKE_NS if args.smoke else FULL_NS
    summary = measure_throughput(ns, shards=args.shards)

    if not args.no_artifacts and not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_sharded.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for p in summary["points"]:
            mono = p["monolithic_rounds_per_sec"]
            speed = p["speedup"]
            print(
                f"n={p['n']:>9,}  mono "
                + ("      - " if mono is None else f"{mono:7.2f}")
                + f" rounds/s  service {p['service_rounds_per_sec']:7.2f}"
                " rounds/s  speedup "
                + ("   -" if speed is None else f"{speed:.2f}x")
            )
        print(
            "parity: "
            + ("bit-identical"
               if summary["parity_bit_identical"] else "BROKEN")
        )

    failures = check_summary(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
