"""Ablation A13 — vectorising the outer loop.

The audits and scans evaluate the closed-form mechanism at thousands of
profiles.  This bench measures the payoff of batching those
evaluations into ``(K, n)`` array operations versus looping the scalar
mechanism — the optimisation pattern the scientific-Python performance
literature prescribes (vectorise the outer loop, not just the inner
math).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import render_table
from repro.mechanism import VerificationMechanism
from repro.mechanism.batch import batch_run

K = 2_000
N = 16


def _profiles():
    rng = np.random.default_rng(0)
    t = rng.uniform(1.0, 10.0, size=N)
    bids = t * rng.uniform(0.5, 2.0, size=(K, N))
    execs = bids * rng.uniform(1.0, 1.5, size=(K, N))
    return bids, execs


def test_batch_path(benchmark):
    bids, execs = _profiles()
    outcome = benchmark(batch_run, bids, 20.0, execs)
    assert outcome.n_profiles == K


def test_scalar_loop_path(benchmark, record_result):
    bids, execs = _profiles()
    mechanism = VerificationMechanism()

    def loop():
        return [
            mechanism.run(bids[k], 20.0, execs[k]).payments.total_payment
            for k in range(K)
        ]

    totals = benchmark.pedantic(loop, rounds=3, iterations=1)
    batch = batch_run(bids, 20.0, execs)
    np.testing.assert_allclose(
        totals, batch.payment.sum(axis=1), rtol=1e-10
    )

    # Record the measured speedup for EXPERIMENTS.md (timed crudely
    # here; the benchmark table holds the precise numbers).
    import time

    start = time.perf_counter()
    loop()
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    batch_run(bids, 20.0, execs)
    batch_s = time.perf_counter() - start
    speedup = loop_s / batch_s
    assert speedup > 5.0  # the vectorised path must be decisively faster

    record_result(
        "ablation_batch",
        render_table(
            ["path", "seconds for 2000 profiles (n=16)"],
            [
                ["scalar loop", f"{loop_s:.4f}"],
                ["vectorised batch", f"{batch_s:.4f}"],
                ["speedup", f"{speedup:.0f}x"],
            ],
            title="A13. Vectorising the profile loop.",
        ),
    )
