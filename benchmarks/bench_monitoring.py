"""Ablation A12 — online verification: the detector's operating curve.

How quickly can the mechanism catch a machine executing slower than it
bid, *during* the round rather than after it?  Measures the CUSUM
detector's mean detection delay against the slowdown factor, and the
false-alarm behaviour on honest machines.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import render_table
from repro.protocol.monitoring import detection_delay


def test_detection_operating_curve(benchmark, record_result):
    def mean_delay(factor: float, seeds: int = 25) -> tuple[float, int]:
        delays = [
            detection_delay(1.0, factor, 2.0, np.random.default_rng(seed))
            for seed in range(seeds)
        ]
        fired = [d for d in delays if d is not None]
        mean = float(np.mean(fired)) if fired else float("nan")
        return mean, len(fired)

    benchmark(mean_delay, 2.0, 5)

    rows = []
    for factor in (1.0, 1.25, 1.5, 2.0, 3.0, 5.0):
        mean, fired = mean_delay(factor)
        rows.append(
            [
                f"{factor:g}x",
                "never" if np.isnan(mean) else f"{mean:.0f}",
                f"{fired}/25",
            ]
        )

    # Honest machines (factor 1.0) must essentially never fire over the
    # 100k-job horizon; big slowdowns must be caught within ~100 jobs.
    assert rows[0][2] in ("0/25", "1/25")
    big = float(rows[4][1])
    assert big < 100

    record_result(
        "ablation_monitoring",
        render_table(
            ["slowdown", "mean jobs to detect", "detected"],
            rows,
            title="A12. Online slowdown detection (CUSUM, default calibration).",
        ),
    )
