"""Ablation A14 — learning dynamics: is efficiency learnable?

Hedge learners over bid factors play the mechanism repeatedly.  The
finding (see THEORY.md §2 scale-invariance and the module docstring):
under the verification mechanism the learners coordinate on a *common*
bid scale — one of the continuum of allocation-equivalent equilibria —
and the realised latency converges to the optimum; under the declared
variant they drift into overbidding without settling on an
allocation-equivalent profile, leaving a permanent efficiency loss.  The mechanism makes efficiency learnable even by
agents who never read Theorem 3.1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.learning import simulate_learning
from repro.allocation import optimal_total_latency
from repro.experiments import render_table
from repro.mechanism import VerificationMechanism

TRUE_VALUES = np.array([1.0, 2.0, 5.0, 10.0])
RATE = 10.0
ROUNDS = 400


def test_learning_dynamics(benchmark, record_result):
    optimum = optimal_total_latency(TRUE_VALUES, RATE)

    def run(mode: str):
        return simulate_learning(
            VerificationMechanism(mode), TRUE_VALUES, RATE,
            np.random.default_rng(0), rounds=ROUNDS, learning_rate=0.3,
        )

    truthful = benchmark(run, "observed")
    declared = run("declared")

    late_truthful = float(truthful.realised_latency[-50:].mean())
    late_declared = float(declared.realised_latency[-50:].mean())
    assert late_truthful == pytest.approx(optimum, rel=0.01)
    assert late_declared > optimum * 1.05

    rows = [
        [
            "verification (Def 3.3)",
            f"{late_truthful:.2f}",
            f"{100 * (late_truthful / optimum - 1):.1f}%",
            np.array2string(truthful.modal_factors, precision=2),
        ],
        [
            "declared compensation",
            f"{late_declared:.2f}",
            f"{100 * (late_declared / optimum - 1):.1f}%",
            np.array2string(declared.modal_factors, precision=2),
        ],
        ["clairvoyant optimum L*", f"{optimum:.2f}", "0.0%", "-"],
    ]
    record_result(
        "ablation_learning",
        render_table(
            ["mechanism", "latency after learning", "gap", "learned bid factors"],
            rows,
            title=f"A14. Hedge learners, {ROUNDS} rounds, 4 machines.",
        ),
    )
