"""Tables 1 and 2: regenerate the configuration rows and time the
closed-form machinery they drive.
"""

from __future__ import annotations

import numpy as np

from repro.allocation import pr_allocation
from repro.experiments import (
    PAPER_SCENARIOS,
    render_table,
    table1_configuration,
)


def test_table1(benchmark, record_result):
    """Table 1 — system configuration (and PR allocation timing on it)."""
    config = table1_configuration()
    result = benchmark(
        pr_allocation, config.cluster.true_values, config.arrival_rate
    )
    np.testing.assert_allclose(result.loads.sum(), 20.0)

    rows = [[machines, value] for machines, value in config.groups]
    rows.append(["arrival rate R", config.arrival_rate])
    record_result(
        "table1",
        render_table(["computers", "true value (t)"], rows, title="Table 1. System configuration."),
    )


def test_table2(benchmark, record_result):
    """Table 2 — the eight experiment definitions."""
    config = table1_configuration()

    def build_all():
        from repro.experiments.table2 import build_bid_and_execution_vectors

        return [
            build_bid_and_execution_vectors(config.cluster.true_values, s)
            for s in PAPER_SCENARIOS
        ]

    vectors = benchmark(build_all)
    assert len(vectors) == 8

    rows = [
        [s.name, f"{s.bid_factor:g} * t1", f"{s.execution_factor:g} * t1", s.characterization]
        for s in PAPER_SCENARIOS
    ]
    record_result(
        "table2",
        render_table(
            ["experiment", "bid b1", "execution t̃1", "characterization"],
            rows,
            title="Table 2. Types of experiments.",
        ),
    )
