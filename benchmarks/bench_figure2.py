"""Figure 2 — payment and utility of computer C1 per experiment.

Paper shape to reproduce: C1's utility peaks at True1 and is lower in
every lying experiment; in Low2 the utility is negative.  The paper's
prose additionally reports a negative *payment* in Low2, which holds
under the declared-compensation variant (both variants are regenerated
side by side; see EXPERIMENTS.md for the discussion).
"""

from __future__ import annotations

from repro.experiments import figure2_data, render_table
from repro.mechanism import VerificationMechanism


def test_figure2(benchmark, record_result):
    observed = benchmark(figure2_data)
    declared = figure2_data(mechanism=VerificationMechanism("declared"))

    true1_utility = observed["True1"][1]
    for name, (_payment, utility) in observed.items():
        if name != "True1":
            assert utility < true1_utility
    assert observed["Low2"][1] < 0.0
    assert declared["Low2"][0] < 0.0  # the paper's negative payment

    rows = [
        [
            name,
            observed[name][0],
            observed[name][1],
            declared[name][0],
            declared[name][1],
        ]
        for name in observed
    ]
    record_result(
        "figure2",
        render_table(
            [
                "experiment",
                "pay (Def 3.3)",
                "util (Def 3.3)",
                "pay (declared)",
                "util (declared)",
            ],
            rows,
            title="Figure 2. Payment and utility for computer C1.",
        ),
    )
