"""Ablation A3 — observed vs declared compensation.

The design choice DESIGN.md flags: Definition 3.3 compensates at the
*observed* cost (truthful, Theorem 3.1); the variant matching the
paper's Figure 2 prose compensates at the *declared* cost and is not
truthful.  This bench runs the full deviation audit on both and records
the best deviation each admits.
"""

from __future__ import annotations

from repro.experiments import render_table, table1_configuration
from repro.mechanism import VerificationMechanism, truthfulness_audit


def test_truthfulness_audit_both_variants(benchmark, record_result):
    config = table1_configuration()
    t = config.cluster.true_values[:8]  # audit grid is quadratic in size
    rate = 10.0

    observed_report = benchmark(
        truthfulness_audit, VerificationMechanism("observed"), t, rate
    )
    declared_report = truthfulness_audit(
        VerificationMechanism("declared"), t, rate
    )

    assert observed_report.is_truthful
    assert not declared_report.is_truthful

    worst = declared_report.worst()
    rows = [
        ["observed (Def 3.3)", observed_report.max_gain, "yes", "-", "-"],
        [
            "declared (Fig 2 prose)",
            declared_report.max_gain,
            "no",
            f"bid {worst.best_bid:g} (true {t[worst.agent]:g})",
            f"agent {worst.agent}",
        ],
    ]
    record_result(
        "ablation_compensation",
        render_table(
            ["compensation", "best deviation gain", "truthful", "worst deviation", "by"],
            rows,
            precision=4,
            title="A3. Deviation audit: observed vs declared compensation.",
        ),
    )
