"""Ablation A4 — verification under estimation noise.

The paper assumes the mechanism "knows" the execution values; our
protocol estimates them from observed completions.  This bench measures
(a) how the estimation error decays with the observation window, and
(b) the induced incentive error (epsilon-truthfulness) under unbiased
estimator noise — which is ~0 because the Definition 3.3 payment is
algebraically independent of the agent's own observed value.
"""

from __future__ import annotations

import numpy as np

from repro.agents import TruthfulAgent
from repro.analysis import epsilon_truthfulness_under_noise
from repro.experiments import render_table, table1_configuration
from repro.mechanism import VerificationMechanism
from repro.protocol import run_protocol


def test_estimation_error_vs_duration(benchmark, record_result):
    config = table1_configuration()
    agents = [TruthfulAgent(t) for t in config.cluster.true_values]

    def run_window(duration: float) -> float:
        result = run_protocol(
            agents, config.arrival_rate, duration=duration,
            rng=np.random.default_rng(int(duration)),
        )
        return float(result.estimation_relative_error.mean())

    # The sweep itself goes through the campaign engine: one truthful
    # protocol unit per window, seed = int(duration) — the exact
    # configuration run_window executes inline, so the two paths must
    # agree bit for bit (the engine's purity contract).
    from repro.parallel import CampaignEngine, ExperimentUnit

    durations = [25.0, 100.0, 400.0, 1600.0]
    units = [
        ExperimentUnit(
            kind="protocol",
            scenario="True1",
            bid_factor=1.0,
            execution_factor=1.0,
            true_values=tuple(config.cluster.true_values.tolist()),
            arrival_rate=config.arrival_rate,
            seed=int(d),
            duration=d,
        )
        for d in durations
    ]
    campaign = CampaignEngine(workers=0).run(units)
    errors = [
        float(np.mean([e for e in p["estimation_error"] if e is not None]))
        for p in campaign.payloads
    ]
    assert errors[1] == run_window(100.0)  # engine == inline, bit-exact
    benchmark(run_window, 100.0)

    # Error decays with the window (more completions per machine).
    assert errors[-1] < errors[0]

    rows = [[d, 100.0 * e] for d, e in zip(durations, errors)]
    record_result(
        "ablation_noise_estimation",
        render_table(
            ["window (s)", "mean |t̂-t̃|/t̃ %"],
            rows,
            title="A4a. Verification estimation error vs observation window.",
        ),
    )


def test_epsilon_truthfulness_under_noise(benchmark, record_result):
    config = table1_configuration()
    t = config.cluster.true_values[:6]
    mechanism = VerificationMechanism()

    def epsilon(noise: float) -> float:
        return epsilon_truthfulness_under_noise(
            mechanism, t, 10.0, 0, np.random.default_rng(42),
            noise_relative_std=noise, n_samples=150,
        )

    noises = [0.0, 0.05, 0.1, 0.2]
    epsilons = [epsilon(s) for s in noises]
    benchmark(epsilon, 0.05)

    # Unbiased noise never opens a materially profitable deviation.
    truthful_scale = 10.0**2 / float(np.sum(1.0 / t))
    assert all(e < 0.05 * truthful_scale for e in epsilons)

    rows = [[100.0 * s, e] for s, e in zip(noises, epsilons)]
    record_result(
        "ablation_noise_epsilon",
        render_table(
            ["estimator noise %", "epsilon (best deviation gain)"],
            rows,
            precision=4,
            title="A4b. Incentive error under unbiased verification noise.",
        ),
    )
