"""Ablation A18 — the resilience layer under seeded chaos.

Prices the supervised multi-round loop: how much retrying, restoring,
and quarantining the chaos schedule forces, and confirms the headline
robustness claim — a long mixed-fault campaign with **zero** invariant
violations (allocation feasibility, at-most-once payment, no pay
without verification, voluntary participation for honest survivors).

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_resilience.py --benchmark-only``);
* standalone as the CI smoke gate
  (``PYTHONPATH=src python benchmarks/bench_resilience.py --smoke``),
  which exits non-zero on any invariant violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

TRUE_VALUES = [1.0, 1.0, 2.0, 2.0, 5.0, 5.0, 10.0, 10.0]
RATE = 8.0


def run_campaign(
    n_rounds: int,
    seed: int,
    *,
    duration: float = 40.0,
) -> dict:
    """One seeded chaos campaign; returns a JSON-ready summary."""
    from repro.agents import TruthfulAgent
    from repro.resilience import ChaosHarness, FaultPlan, RoundSupervisor

    supervisor = RoundSupervisor(
        [TruthfulAgent(t) for t in TRUE_VALUES],
        RATE,
        duration=duration,
        rng=np.random.default_rng(seed),
    )
    plan = FaultPlan.generate(n_rounds, supervisor.machine_names, seed=seed)
    report = ChaosHarness(supervisor, plan, stop_on_violation=False).run()
    completed = [r for r in report.rounds if not r.voided]
    return {
        "machines": len(TRUE_VALUES),
        "arrival_rate": RATE,
        "seed": seed,
        "rounds": report.n_rounds,
        "rounds_voided": report.n_voided,
        "machine_faults_injected": plan.n_machine_faults,
        "coordinator_crashes_injected": plan.n_coordinator_crashes,
        "coordinator_restarts": report.n_coordinator_restarts,
        "bid_retries": sum(r.bid_retries for r in report.rounds),
        "report_retries": sum(r.report_retries for r in report.rounds),
        "slowdown_alerts": report.n_alerts,
        "quarantine_rounds": report.n_quarantine_events,
        "jobs_routed": sum(r.jobs_routed for r in report.rounds),
        "mean_realised_latency": (
            sum(r.outcome.realised_latency for r in completed) / len(completed)
            if completed
            else None
        ),
        "incremental_allocator_ops": supervisor.allocator.incremental_ops,
        "incremental_allocator_rebuilds": supervisor.allocator.rebuilds,
        "invariant_violations": [str(v) for v in report.violations],
    }


# --------------------------------------------------------------- pytest


def test_chaos_campaign(benchmark, record_result, record_json):
    summary = benchmark.pedantic(
        run_campaign, args=(30, 7), kwargs={"duration": 20.0}, rounds=1,
        iterations=1,
    )
    assert summary["invariant_violations"] == []
    assert summary["rounds"] == 30
    assert summary["coordinator_restarts"] > 0  # chaos actually bit

    from repro.experiments import render_table

    rows = [[key, value] for key, value in summary.items()
            if key != "invariant_violations"]
    rows.append(["invariant violations", len(summary["invariant_violations"])])
    record_result(
        "ablation_resilience_chaos",
        render_table(
            ["quantity", "value"],
            rows,
            title="A18. Supervised loop under 30 rounds of seeded chaos (n = 8).",
        ),
    )
    record_json("ablation_resilience_chaos", summary)


def test_incremental_reallocation_dominates_rebuilds(record_json):
    # Long quarantine-heavy campaign: membership churn must be served
    # by O(changes) incremental updates, not O(n) rebuilds.
    summary = run_campaign(40, 11, duration=20.0)
    assert summary["invariant_violations"] == []
    assert summary["incremental_allocator_rebuilds"] <= 3
    record_json("ablation_resilience_incremental", summary)


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run a campaign and fail on any violation."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast seeded campaign sized for CI (12 rounds)",
    )
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    args = parser.parse_args(argv)

    rounds = 12 if args.smoke else args.rounds
    duration = 15.0 if args.smoke else 40.0
    summary = run_campaign(rounds, args.seed, duration=duration)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for key, value in summary.items():
            if key != "invariant_violations":
                print(f"{key:32} {value}")
        print(f"{'invariant_violations':32} {len(summary['invariant_violations'])}")

    if summary["invariant_violations"]:
        for violation in summary["invariant_violations"]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
