"""Figures 3–5 — per-computer payment and utility for True1, High1, Low1.

Paper shape to reproduce: in Low1 every computer's utility drops below
its True1 value (C1 by ~45%); in High1 C1 drops ~62% while every other
computer's utility *rises* (they receive more jobs and larger payments).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figure345_data, render_table, table1_configuration


@pytest.mark.parametrize(
    "figure, scenario",
    [("figure3", "True1"), ("figure4", "High1"), ("figure5", "Low1")],
)
def test_figures345(benchmark, record_result, figure, scenario):
    data = benchmark(figure345_data, scenario)
    names = table1_configuration().cluster.names

    if scenario == "High1":
        true1 = figure345_data("True1")
        assert np.all(data["utility"][1:] > true1["utility"][1:])
        drop = 1.0 - data["utility"][0] / true1["utility"][0]
        assert drop == pytest.approx(0.62, abs=0.025)
    if scenario == "Low1":
        true1 = figure345_data("True1")
        assert np.all(data["utility"][1:] < true1["utility"][1:])
        drop = 1.0 - data["utility"][0] / true1["utility"][0]
        assert drop == pytest.approx(0.45, abs=0.025)

    rows = [
        [names[i], data["payment"][i], data["utility"][i]]
        for i in range(len(names))
    ]
    record_result(
        figure,
        render_table(
            ["computer", "payment", "utility"],
            rows,
            title=f"Figure {figure[-1]}. Payment and utility per computer ({scenario}).",
        ),
    )
