"""Ablation A8 — distributed payment handling (the paper's future work).

Compares the centralised protocol against the fully distributed
mechanism (every machine computes its own payment from two tree-sum
rounds), across overlay shapes and with the privacy layer on:

* outcome equality (payments identical to the centralised mechanism),
* message counts (4 per machine, any tree) and hop latency (tree depth),
* the cost of privacy (k secret shares per contribution).
"""

from __future__ import annotations

import numpy as np

from repro.distributed import (
    DistributedVerificationMechanism,
    star_overlay,
    tree_overlay,
)
from repro.experiments import render_table, table1_configuration
from repro.experiments.table2 import build_bid_and_execution_vectors, scenario_by_name
from repro.mechanism import VerificationMechanism


def _low2_inputs():
    config = table1_configuration()
    bids, executions = build_bid_and_execution_vectors(
        config.cluster.true_values, scenario_by_name("Low2")
    )
    return config, bids, executions


def test_distributed_matches_centralised(benchmark, record_result):
    config, bids, executions = _low2_inputs()
    central = VerificationMechanism().run(bids, config.arrival_rate, executions)

    mechanism = DistributedVerificationMechanism(tree_overlay(16))
    result = benchmark(mechanism.run, bids, config.arrival_rate, executions)

    np.testing.assert_allclose(
        result.outcome.payments.payment, central.payments.payment, rtol=1e-10
    )

    rows = []
    for label, overlay in (
        ("star (centralised shape)", star_overlay(16)),
        ("binary tree", tree_overlay(16, arity=2)),
        ("chain", tree_overlay(16, arity=1)),
    ):
        run = DistributedVerificationMechanism(overlay).run(
            bids, config.arrival_rate, executions
        )
        max_err = float(
            np.abs(run.outcome.payments.payment - central.payments.payment).max()
        )
        rows.append(
            [label, run.total_messages, run.rounds_of_latency, f"{max_err:.1e}"]
        )
    record_result(
        "ablation_distributed",
        render_table(
            ["overlay", "messages", "hop latency", "max payment error"],
            rows,
            title="A8a. Distributed payments: shape trade-offs (n = 16, Low2).",
        ),
    )


def test_privacy_layer_cost(benchmark, record_result):
    config, bids, executions = _low2_inputs()
    central = VerificationMechanism().run(bids, config.arrival_rate, executions)

    def run_private(k: int):
        return DistributedVerificationMechanism(
            tree_overlay(16), n_aggregators=k, rng=np.random.default_rng(11)
        ).run(bids, config.arrival_rate, executions)

    result = benchmark(run_private, 3)
    np.testing.assert_allclose(
        result.outcome.payments.payment, central.payments.payment, atol=1e-5
    )

    rows = []
    for k in (0, 2, 3, 5):
        if k == 0:
            run = DistributedVerificationMechanism(tree_overlay(16)).run(
                bids, config.arrival_rate, executions
            )
        else:
            run = run_private(k)
        max_err = float(
            np.abs(run.outcome.payments.payment - central.payments.payment).max()
        )
        rows.append([k, run.privacy_shares_sent, f"{max_err:.1e}"])
    record_result(
        "ablation_privacy",
        render_table(
            ["aggregators k", "shares sent", "max payment error"],
            rows,
            title="A8b. Privacy layer: shares vs masking noise (n = 16).",
        ),
    )
