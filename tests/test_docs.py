"""Documentation integrity: doctested snippets and intra-repo links.

``docs/api.md`` promises that every snippet on the page runs; this
module keeps that promise enforced by the regular test suite, and runs
the same link check CI's docs job performs via
``tools/check_links.py``.
"""

from __future__ import annotations

import doctest
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestApiReference:
    def test_every_snippet_runs(self):
        results = doctest.testfile(
            str(REPO_ROOT / "docs" / "api.md"),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 30, "docs/api.md lost its snippets"
        assert results.failed == 0

    def test_reference_covers_every_documented_subpackage(self):
        text = (REPO_ROOT / "docs" / "api.md").read_text()
        for section in (
            "repro.allocation",
            "repro.mechanism",
            "repro.protocol",
            "repro.resilience",
            "repro.observability",
        ):
            assert f"`{section}`" in text, f"docs/api.md lacks a {section} section"


class TestIntraRepoLinks:
    def test_no_broken_markdown_links(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from check_links import broken_links
        finally:
            sys.path.pop(0)
        failures = broken_links(REPO_ROOT)
        formatted = [
            f"{path.relative_to(REPO_ROOT)}:{lineno}: {target}"
            for path, lineno, target in failures
        ]
        assert not failures, "broken intra-repo links:\n" + "\n".join(formatted)
