"""Documentation integrity: doctested snippets and intra-repo links.

``docs/api.md``, ``docs/handbook.md``, ``docs/distributed.md``, and
``docs/mechanisms.md``
promise that every snippet on the page runs; this module keeps that
promise enforced by the regular test suite, and runs the same link +
anchor check CI's docs job performs via ``tools/check_links.py``.
"""

from __future__ import annotations

import doctest
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _tools():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_links
    finally:
        sys.path.pop(0)
    return check_links


class TestApiReference:
    def test_every_snippet_runs(self):
        results = doctest.testfile(
            str(REPO_ROOT / "docs" / "api.md"),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 30, "docs/api.md lost its snippets"
        assert results.failed == 0

    def test_reference_covers_every_documented_subpackage(self):
        text = (REPO_ROOT / "docs" / "api.md").read_text()
        for section in (
            "repro.allocation",
            "repro.mechanism",
            "repro.protocol",
            "repro.resilience",
            "repro.observability",
            "repro.parallel",
        ):
            assert f"`{section}`" in text, f"docs/api.md lacks a {section} section"


class TestHandbook:
    def test_every_snippet_runs(self):
        results = doctest.testfile(
            str(REPO_ROOT / "docs" / "handbook.md"),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 10, "docs/handbook.md lost its snippets"
        assert results.failed == 0

    def test_handbook_covers_every_ablation_bench(self):
        text = (REPO_ROOT / "docs" / "handbook.md").read_text()
        for bench in sorted(REPO_ROOT.glob("benchmarks/bench_*.py")):
            assert bench.name in text, (
                f"docs/handbook.md does not document {bench.name}"
            )

    def test_handbook_reproduces_the_optimum(self):
        text = (REPO_ROOT / "docs" / "handbook.md").read_text()
        assert "78.43" in text, "handbook lost the L* reproduction"


class TestDistributedGuide:
    def test_every_snippet_runs(self):
        results = doctest.testfile(
            str(REPO_ROOT / "docs" / "distributed.md"),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 20, "docs/distributed.md lost its snippets"
        assert results.failed == 0

    def test_guide_covers_the_operator_surface(self):
        text = (REPO_ROOT / "docs" / "distributed.md").read_text()
        for topic in (
            "repro serve",
            "CoordinatorService",
            "aggregate_shards",
            "arm_shard_crash",
            "--shards",
        ):
            assert topic in text, f"docs/distributed.md lacks {topic}"


class TestMechanismGuide:
    def test_every_snippet_runs(self):
        results = doctest.testfile(
            str(REPO_ROOT / "docs" / "mechanisms.md"),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 20, "docs/mechanisms.md lost its snippets"
        assert results.failed == 0

    def test_guide_covers_all_three_mechanisms(self):
        text = (REPO_ROOT / "docs" / "mechanisms.md").read_text()
        for topic in (
            "VerificationMechanism",
            "VCGMechanism",
            "ArcherTardosMechanism",
            "S₋ᵢ",
            "Q₋ᵢ",
            "payment_integral",
            "kernel_mode_of",
            "repro tournament",
            "TOURNAMENT_results.json",
        ):
            assert topic in text, f"docs/mechanisms.md lacks {topic}"

    def test_guide_quotes_the_kernel_formulas(self):
        text = (REPO_ROOT / "docs" / "mechanisms.md").read_text()
        for mode in ("observed:", "declared:", "vcg:", "archer_tardos:"):
            assert mode in text, f"docs/mechanisms.md lost the {mode} kernel"


class TestIntraRepoLinks:
    def test_no_broken_markdown_links(self):
        broken_links = _tools().broken_links
        failures = broken_links(REPO_ROOT)
        formatted = [
            f"{path.relative_to(REPO_ROOT)}:{lineno}: {target}"
            for path, lineno, target in failures
        ]
        assert not failures, "broken intra-repo links:\n" + "\n".join(formatted)


class TestAnchorValidation:
    """The link checker's GitHub-slug anchor machinery."""

    @pytest.mark.parametrize(
        ("heading", "slug"),
        [
            ("Quick start", "quick-start"),
            ("`repro.parallel` — campaigns", "reproparallel--campaigns"),
            ("What's new in 1.3?", "whats-new-in-13"),
            ("A20 — `bench_parallel.py`", "a20--bench_parallelpy"),
            ("[linked](other.md) heading", "linked-heading"),
        ],
    )
    def test_github_slug(self, heading, slug):
        assert _tools().github_slug(heading) == slug

    def test_duplicate_headings_deduplicated(self):
        github_slug = _tools().github_slug
        seen: dict[str, int] = {}
        assert github_slug("Results", seen) == "results"
        assert github_slug("Results", seen) == "results-1"
        assert github_slug("Results", seen) == "results-2"

    def test_fenced_code_headings_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Real\n```bash\n# not a heading\n```\n## Also real\n",
            encoding="utf-8",
        )
        assert _tools().markdown_anchors(doc) == {"real", "also-real"}

    def test_broken_anchor_reported(self, tmp_path):
        (tmp_path / "target.md").write_text("# Only Section\n", encoding="utf-8")
        (tmp_path / "source.md").write_text(
            "[ok](target.md#only-section)\n"
            "[bad](target.md#missing-section)\n"
            "[self-ok](#local)\n\n## Local\n",
            encoding="utf-8",
        )
        failures = _tools().broken_links(tmp_path)
        targets = [target for _, _, target in failures]
        assert targets == ["target.md#missing-section"]

    def test_broken_self_anchor_reported(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "[gone](#nowhere)\n\n# Here\n", encoding="utf-8"
        )
        failures = _tools().broken_links(tmp_path)
        assert [t for _, _, t in failures] == ["#nowhere"]

    def test_anchor_to_non_markdown_file_skipped(self, tmp_path):
        (tmp_path / "script.py").write_text("print()\n", encoding="utf-8")
        (tmp_path / "doc.md").write_text(
            "[code](script.py#L3)\n", encoding="utf-8"
        )
        assert _tools().broken_links(tmp_path) == []
