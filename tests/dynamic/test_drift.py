"""Unit tests for the drift processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic import GeometricRandomWalkDrift, RegimeSwitchDrift


class TestGeometricRandomWalk:
    def test_zero_sigma_is_identity(self, rng):
        drift = GeometricRandomWalkDrift(0.0, rng)
        t = np.array([1.0, 5.0])
        np.testing.assert_allclose(drift.step(t), t)

    def test_values_stay_positive_and_bounded(self, rng):
        drift = GeometricRandomWalkDrift(1.0, rng, bounds=(0.5, 2.0))
        t = np.array([1.0, 1.0, 1.0])
        for _ in range(100):
            t = drift.step(t)
            assert np.all(t >= 0.5)
            assert np.all(t <= 2.0)

    def test_step_size_scales_with_sigma(self):
        t = np.full(2000, 1.0)
        small = GeometricRandomWalkDrift(0.01, np.random.default_rng(1)).step(t)
        large = GeometricRandomWalkDrift(0.2, np.random.default_rng(1)).step(t)
        assert np.std(np.log(large)) > np.std(np.log(small))

    def test_drift_is_unbiased_in_log_space(self):
        t = np.full(20000, 1.0)
        stepped = GeometricRandomWalkDrift(0.1, np.random.default_rng(2)).step(t)
        assert abs(float(np.mean(np.log(stepped)))) < 0.01

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            GeometricRandomWalkDrift(-0.1, rng)
        with pytest.raises(ValueError):
            GeometricRandomWalkDrift(0.1, rng, bounds=(2.0, 1.0))


class TestRegimeSwitch:
    def test_zero_probability_is_identity(self, rng):
        drift = RegimeSwitchDrift(0.0, rng)
        t = np.array([1.0, 5.0])
        np.testing.assert_allclose(drift.step(t), t)

    def test_probability_one_redraws_everything(self, rng):
        drift = RegimeSwitchDrift(1.0, rng, t_range=(2.0, 3.0))
        t = np.array([10.0, 10.0, 10.0])
        stepped = drift.step(t)
        assert np.all(stepped >= 2.0)
        assert np.all(stepped <= 3.0)

    def test_switch_rate_matches_probability(self):
        rng = np.random.default_rng(3)
        drift = RegimeSwitchDrift(0.25, rng, t_range=(1.0, 10.0))
        t = np.full(20000, 100.0)  # outside t_range: switches are visible
        stepped = drift.step(t)
        switched_fraction = float(np.mean(stepped != 100.0))
        assert switched_fraction == pytest.approx(0.25, abs=0.02)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            RegimeSwitchDrift(1.5, rng)
        with pytest.raises(ValueError):
            RegimeSwitchDrift(0.5, rng, t_range=(0.0, 1.0))
