"""Unit tests for the repeated mechanism simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic import (
    GeometricRandomWalkDrift,
    RegimeSwitchDrift,
    RepeatedMechanismSimulation,
)


class _FrozenDrift:
    """No drift at all, for exactness tests."""

    def step(self, true_values):
        return true_values


def _simulation(drift, rebid_period=1, n=4, rate=8.0):
    t = np.array([1.0, 2.0, 5.0, 10.0])[:n]
    return RepeatedMechanismSimulation(
        t, rate, drift, rebid_period=rebid_period
    )


class TestStationarySystem:
    def test_no_drift_means_no_staleness(self):
        sim = _simulation(_FrozenDrift(), rebid_period=10)
        records = sim.run(30)
        for record in records:
            assert record.staleness_ratio == pytest.approx(1.0)

    def test_rebid_schedule(self):
        sim = _simulation(_FrozenDrift(), rebid_period=5)
        records = sim.run(12)
        assert [r.rebid for r in records] == [
            k % 5 == 0 for k in range(12)
        ]

    def test_message_accounting(self):
        sim = _simulation(_FrozenDrift(), rebid_period=5)
        records = sim.run(10)
        # Rounds at epochs 0 and 5: two rounds of 5n = 20 messages.
        assert RepeatedMechanismSimulation.total_messages(records) == 2 * 5 * 4


class TestDriftingSystem:
    def test_staleness_at_least_one(self, rng):
        drift = GeometricRandomWalkDrift(0.2, rng)
        sim = _simulation(drift, rebid_period=4)
        records = sim.run(60)
        assert all(r.staleness_ratio >= 1.0 - 1e-12 for r in records)

    def test_rebid_epoch_is_optimal(self, rng):
        drift = GeometricRandomWalkDrift(0.3, rng)
        sim = _simulation(drift, rebid_period=7)
        records = sim.run(40)
        for record in records:
            if record.rebid:
                assert record.staleness_ratio == pytest.approx(1.0)

    def test_more_frequent_rebids_reduce_staleness(self):
        def mean_staleness(period: int) -> float:
            drift = RegimeSwitchDrift(
                0.3, np.random.default_rng(5), t_range=(1.0, 10.0)
            )
            sim = _simulation(drift, rebid_period=period)
            return RepeatedMechanismSimulation.mean_staleness(sim.run(300))

        fast = mean_staleness(1)
        slow = mean_staleness(20)
        assert fast == pytest.approx(1.0)
        assert slow > fast

    def test_messages_trade_against_staleness(self):
        drift = RegimeSwitchDrift(0.3, np.random.default_rng(6))
        cheap = _simulation(drift, rebid_period=20).run(100)
        drift2 = RegimeSwitchDrift(0.3, np.random.default_rng(6))
        chatty = _simulation(drift2, rebid_period=1).run(100)
        assert (
            RepeatedMechanismSimulation.total_messages(cheap)
            < RepeatedMechanismSimulation.total_messages(chatty)
        )


class TestValidation:
    def test_bad_period(self, rng):
        with pytest.raises(ValueError):
            _simulation(_FrozenDrift(), rebid_period=0)

    def test_bad_epochs(self):
        sim = _simulation(_FrozenDrift())
        with pytest.raises(ValueError):
            sim.run(0)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            RepeatedMechanismSimulation.mean_staleness([])
