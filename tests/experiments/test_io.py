"""Unit tests for experiment persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import run_all_scenarios
from repro.experiments.io import (
    load_records_json,
    outcome_to_dict,
    reconstruct_payment_vectors,
    records_to_csv,
    records_to_json,
)


@pytest.fixture(scope="module")
def records():
    return run_all_scenarios()


class TestJsonRoundTrip:
    def test_round_trip_preserves_values(self, records, tmp_path):
        path = tmp_path / "sweep.json"
        records_to_json(records, path)
        loaded = load_records_json(path)
        assert len(loaded) == 8
        by_name = {entry["name"]: entry for entry in loaded}
        low2 = by_name["Low2"]
        original = next(r for r in records if r.scenario.name == "Low2")
        assert low2["outcome"]["realised_latency"] == pytest.approx(
            original.total_latency
        )
        arrays = reconstruct_payment_vectors(low2)
        np.testing.assert_allclose(
            arrays["payment"], original.outcome.payments.payment
        )
        np.testing.assert_allclose(
            arrays["utility"], original.outcome.payments.utility
        )

    def test_true_values_serialised(self, records, tmp_path):
        path = tmp_path / "sweep.json"
        records_to_json(records, path)
        loaded = load_records_json(path)
        assert loaded[0]["outcome"]["true_values"][0] == 1.0

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "experiments": []}))
        with pytest.raises(ValueError, match="format version"):
            load_records_json(path)

    def test_schema_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"format_version": 1, "experiments": [{"name": "x"}]})
        )
        with pytest.raises(ValueError, match="missing key"):
            load_records_json(path)

    def test_json_is_deterministic(self, records, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        records_to_json(records, a)
        records_to_json(records, b)
        assert a.read_text() == b.read_text()


class TestCsv:
    def test_csv_has_header_and_all_rows(self, records, tmp_path):
        path = tmp_path / "sweep.csv"
        records_to_csv(records, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 9
        assert lines[0].startswith("experiment,")
        assert lines[1].startswith("True1,")

    def test_csv_latency_column(self, records, tmp_path):
        path = tmp_path / "sweep.csv"
        records_to_csv(records, path)
        true1 = path.read_text().splitlines()[1].split(",")
        assert float(true1[3]) == pytest.approx(78.43, abs=0.01)


class TestOutcomeDict:
    def test_contains_core_fields(self, records):
        data = outcome_to_dict(records[0].outcome)
        for key in ("loads", "bids", "compensation", "bonus", "metadata"):
            assert key in data
        assert data["arrival_rate"] == 20.0
