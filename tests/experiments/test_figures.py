"""Unit tests for the figure data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    figure1_data,
    figure2_data,
    figure345_data,
    figure6_data,
    figure6_truthful_structure,
    run_all_scenarios,
    run_scenario,
    scenario_by_name,
)
from repro.mechanism import VerificationMechanism


class TestRunScenario:
    def test_record_fields_consistent(self):
        record = run_scenario(scenario_by_name("High1"))
        assert record.total_latency == record.outcome.realised_latency
        assert record.c1_payment == pytest.approx(
            float(record.outcome.payments.payment[0])
        )
        assert record.degradation_percent(record.total_latency) == 0.0

    def test_true_values_recorded(self):
        record = run_scenario(scenario_by_name("True1"))
        assert record.outcome.true_values is not None
        assert record.outcome.true_values[0] == 1.0


class TestFigure1:
    def test_all_scenarios_present(self):
        data = figure1_data()
        assert set(data) == {
            "True1", "True2", "High1", "High2", "High3", "High4", "Low1", "Low2",
        }

    def test_values_positive(self):
        assert all(v > 0 for v in figure1_data().values())


class TestFigure2:
    def test_returns_pairs(self):
        data = figure2_data()
        for payment, utility in data.values():
            assert isinstance(payment, float)
            assert isinstance(utility, float)

    def test_mechanism_override_changes_low_payments(self):
        observed = figure2_data()
        declared = figure2_data(mechanism=VerificationMechanism("declared"))
        assert observed["Low1"][0] != declared["Low1"][0]
        # True scenarios coincide: bid == execution there... for True1 only.
        assert observed["True1"] == pytest.approx(declared["True1"])


class TestFigures345:
    @pytest.mark.parametrize("name", ["True1", "High1", "Low1"])
    def test_per_computer_arrays(self, name):
        data = figure345_data(name)
        for key in ("payment", "utility", "compensation", "bonus", "valuation"):
            assert data[key].shape == (16,)

    def test_identities_hold(self):
        data = figure345_data("High1")
        np.testing.assert_allclose(
            data["payment"], data["compensation"] + data["bonus"]
        )
        np.testing.assert_allclose(
            data["utility"], data["payment"] + data["valuation"]
        )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            figure345_data("Mid1")


class TestFigure6:
    def test_totals_consistent(self):
        data = figure6_data()
        for row in data.values():
            if row["total_valuation"] > 0:
                assert row["ratio"] == pytest.approx(
                    row["total_payment"] / row["total_valuation"]
                )

    def test_truthful_structure_identities(self):
        structure = figure6_truthful_structure()
        np.testing.assert_allclose(
            structure["ratio"], structure["payment"] / structure["valuation"]
        )

    def test_slower_machines_have_smaller_ratio(self):
        # Bonus scales with the machine's marginal contribution, which
        # is largest for the fastest machines.
        ratios = figure6_truthful_structure()["ratio"]
        assert ratios[0] == ratios.max()
        assert ratios[-1] == ratios.min()


class TestRunAllScenarios:
    def test_custom_mechanism_is_used(self):
        records = run_all_scenarios(mechanism=VerificationMechanism("declared"))
        low2 = next(r for r in records if r.scenario.name == "Low2")
        assert low2.c1_payment < 0.0
