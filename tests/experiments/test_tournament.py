"""The cross-mechanism tournament: patterns, units, scoring, export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import table1_configuration
from repro.experiments.tournament import (
    TOURNAMENT_VARIANTS,
    ManipulationPattern,
    run_tournament,
    tournament_patterns,
    tournament_units,
)
from repro.parallel.engine import CampaignEngine
from repro.parallel.units import execute_unit, unit_cache_key


@pytest.fixture(scope="module")
def result():
    # One serial tournament shared by every assertion in this module.
    return run_tournament()


class TestPatterns:
    def test_grid_has_every_family(self):
        patterns = tournament_patterns(16)
        kinds = {p.kind for p in patterns}
        assert kinds == {"truthful", "single", "multi", "collusion"}

    def test_single_liars_cover_the_lying_table2_scenarios(self):
        singles = [p for p in tournament_patterns(16) if p.kind == "single"]
        assert {p.name for p in singles} == {
            "True2", "High1", "High2", "High3", "High4", "Low1", "Low2"
        }
        assert all(p.manipulators == (0,) for p in singles)

    def test_multi_liar_prefixes_grow_to_max_liars(self):
        patterns = tournament_patterns(16, max_liars=3)
        multi = [p for p in patterns if p.kind == "multi"]
        assert [p.manipulators for p in multi] == [
            (0, 1), (0, 1, 2), (0, 1), (0, 1, 2)
        ]

    def test_collusion_pairs_are_speed_group_representatives(self):
        pairs = [
            p.manipulators
            for p in tournament_patterns(16)
            if p.kind == "collusion"
        ]
        assert pairs == [
            (0, 2), (0, 5), (0, 10), (2, 5), (2, 10), (5, 10)
        ]

    def test_small_systems_still_get_a_pair(self):
        pairs = [
            p.manipulators
            for p in tournament_patterns(2)
            if p.kind == "collusion"
        ]
        assert pairs == [(0, 1)]

    def test_rejects_degenerate_grids(self):
        with pytest.raises(ValueError, match="at least two"):
            tournament_patterns(1)
        with pytest.raises(ValueError, match="max_liars"):
            tournament_patterns(4, max_liars=5)


class TestUnits:
    def test_one_unit_per_mechanism_pattern_cell(self):
        units = tournament_units()
        patterns = tournament_patterns(16)
        assert len(units) == len(TOURNAMENT_VARIANTS) * len(patterns)
        assert {u.variant for u in units} == set(TOURNAMENT_VARIANTS)

    def test_units_are_cacheable_and_executable(self):
        units = tournament_units()
        keys = {unit_cache_key(u) for u in units}
        assert len(keys) == len(units)
        payload = execute_unit(units[0])
        assert "frugality_ratio" in payload

    def test_declared_variant_is_not_a_contender(self):
        assert "declared" not in TOURNAMENT_VARIANTS


class TestScoring:
    def test_truthful_rows_sit_at_the_optimum(self, result):
        for row in result.rows:
            if row.pattern_kind == "truthful":
                assert row.degradation_percent == pytest.approx(0.0, abs=1e-9)
                assert row.robustness_gain == 0.0

    def test_lying_never_improves_the_latency(self, result):
        for row in result.rows:
            assert row.degradation_percent >= -1e-9

    def test_individual_lying_is_unprofitable_for_all_three(self, result):
        for row in result.rows:
            if row.pattern_kind in ("single", "multi"):
                assert not row.profitable, (row.mechanism, row.pattern)

    def test_collusion_splits_the_field(self, result):
        # The A11 finding, now cross-mechanism: joint overbidding pays
        # under the verification mechanism but not under VCG / AT.
        by_mechanism = {
            s["mechanism"]: s["profitable_collusion_patterns"]
            for s in result.standings()
        }
        assert by_mechanism["observed"] > 0
        assert by_mechanism["vcg"] == 0
        assert by_mechanism["archer-tardos"] == 0

    def test_mechanisms_coincide_at_the_truthful_profile(self, result):
        ratios = [
            row.frugality_ratio
            for row in result.rows
            if row.pattern_kind == "truthful"
        ]
        assert len(ratios) == len(TOURNAMENT_VARIANTS)
        for ratio in ratios[1:]:
            assert ratio == pytest.approx(ratios[0], rel=1e-12)

    def test_equilibrium_returns_to_the_truth(self, result):
        assert len(result.equilibrium) == len(TOURNAMENT_VARIANTS)
        for eq in result.equilibrium:
            assert eq.converged
            assert eq.final_degradation_percent == pytest.approx(0.0, abs=1e-6)
            assert eq.max_drift_from_truth < 1e-6

    def test_standings_cover_every_mechanism(self, result):
        standings = result.standings()
        assert [s["mechanism"] for s in standings] == list(TOURNAMENT_VARIANTS)
        for s in standings:
            assert s["worst_degradation_percent"] > 0.0
            assert s["max_individual_gain"] < 0.0


class TestRunnerPlumbing:
    def test_requires_the_truthful_baseline(self):
        lying_only = tuple(
            p for p in tournament_patterns(16) if not p.is_truthful
        )
        with pytest.raises(ValueError, match="truthful baseline"):
            run_tournament(patterns=lying_only)

    def test_engine_cache_serves_a_rerun(self, tmp_path, result):
        patterns = (
            ManipulationPattern("Truthful", "truthful", 1.0, 1.0, (0,)),
            ManipulationPattern("High1 x2", "multi", 3.0, 3.0, (0, 1)),
        )
        engine = CampaignEngine(workers=0, cache=str(tmp_path / "cache"))
        first = run_tournament(engine, patterns=patterns, dynamics=False)
        engine2 = CampaignEngine(workers=0, cache=str(tmp_path / "cache"))
        second = run_tournament(engine2, patterns=patterns, dynamics=False)
        assert first.rows == second.rows
        assert first.rows == tuple(
            r for r in result.rows if r.pattern in ("Truthful", "High1 x2")
        )

    def test_dynamics_flag_skips_the_equilibrium_stage(self):
        patterns = tournament_patterns(16)[:2]
        quick = run_tournament(patterns=patterns, dynamics=False)
        assert quick.equilibrium == ()

    def test_custom_configuration_threads_through(self, result):
        config = table1_configuration()
        assert result.true_values == tuple(
            config.cluster.true_values.tolist()
        )
        assert result.arrival_rate == config.arrival_rate
        assert result.optimal_latency == pytest.approx(
            config.arrival_rate**2
            / np.sum(1.0 / config.cluster.true_values)
        )


class TestExport:
    def test_json_round_trips_and_matches_the_rows(self, result):
        blob = json.loads(json.dumps(result.to_json()))
        assert blob["schema_version"] == 1
        assert len(blob["rows"]) == len(result.rows)
        assert blob["standings"] == result.standings()
        by_cell = {
            (r["mechanism"], r["pattern"]): r for r in blob["rows"]
        }
        for row in result.rows:
            cell = by_cell[(row.mechanism, row.pattern)]
            assert cell["degradation_percent"] == row.degradation_percent
            assert cell["robustness_gain"] == row.robustness_gain
            assert cell["profitable"] == row.profitable
