"""Unit tests for the Table 2 scenario definitions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    PAPER_SCENARIOS,
    Scenario,
    build_bid_and_execution_vectors,
    scenario_by_name,
)


class TestScenarioDefinitions:
    def test_eight_scenarios_in_paper_order(self):
        names = [s.name for s in PAPER_SCENARIOS]
        assert names == [
            "True1", "True2", "High1", "High2", "High3", "High4", "Low1", "Low2",
        ]

    def test_classes_match_bid_factor(self):
        for s in PAPER_SCENARIOS:
            if s.name.startswith("True"):
                assert s.bid_factor == 1.0
            elif s.name.startswith("High"):
                assert s.bid_factor > 1.0
            else:
                assert s.bid_factor < 1.0

    def test_execution_factors_at_least_one(self):
        assert all(s.execution_factor >= 1.0 for s in PAPER_SCENARIOS)

    def test_flags(self):
        true1 = scenario_by_name("True1")
        assert true1.is_truthful_bid and true1.is_full_capacity
        low2 = scenario_by_name("low2")  # case-insensitive
        assert not low2.is_truthful_bid and not low2.is_full_capacity

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="True1"):
            scenario_by_name("Mid1")

    def test_invalid_scenario_construction(self):
        with pytest.raises(ValueError):
            Scenario("X", 0.0, 1.0, "")
        with pytest.raises(ValueError):
            Scenario("X", 1.0, 0.5, "")


class TestVectorConstruction:
    def test_only_manipulator_changes(self):
        t = np.array([1.0, 2.0, 5.0])
        bids, executions = build_bid_and_execution_vectors(
            t, scenario_by_name("High1")
        )
        np.testing.assert_allclose(bids, [3.0, 2.0, 5.0])
        np.testing.assert_allclose(executions, [3.0, 2.0, 5.0])

    def test_custom_manipulator_index(self):
        t = np.array([1.0, 2.0, 5.0])
        bids, executions = build_bid_and_execution_vectors(
            t, scenario_by_name("Low2"), manipulator=2
        )
        np.testing.assert_allclose(bids, [1.0, 2.0, 2.5])
        np.testing.assert_allclose(executions, [1.0, 2.0, 10.0])

    def test_input_not_mutated(self):
        t = np.array([1.0, 2.0])
        build_bid_and_execution_vectors(t, scenario_by_name("High1"))
        np.testing.assert_allclose(t, [1.0, 2.0])

    def test_manipulator_index_validated(self):
        with pytest.raises(IndexError):
            build_bid_and_execution_vectors(
                np.array([1.0]), scenario_by_name("True1"), manipulator=3
            )
