"""Unit tests for the text report rendering."""

from __future__ import annotations

import pytest

from repro.experiments import render_records, render_table, run_all_scenarios


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.50" in lines[2]

    def test_title_line(self):
        text = render_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_precision(self):
        text = render_table(["x"], [[3.14159]], precision=4)
        assert "3.1416" in text

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="headers"):
            render_table(["a", "b"], [[1]])

    def test_columns_aligned(self):
        text = render_table(["col"], [[1.0], [100.0]])
        rows = text.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderRecords:
    def test_contains_all_scenarios(self):
        text = render_records(run_all_scenarios())
        for name in ("True1", "High4", "Low2"):
            assert name in text

    def test_degradation_zero_for_true1(self):
        text = render_records(run_all_scenarios())
        true1_row = next(l for l in text.splitlines() if "True1" in l)
        assert "0.00" in true1_row

    def test_explicit_optimum(self):
        records = run_all_scenarios()
        text = render_records(records, optimum=records[0].total_latency)
        assert "Table 2" in text
