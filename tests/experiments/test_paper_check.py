"""Unit tests for the one-call reproduction checker."""

from __future__ import annotations

import pytest

from repro.experiments import verify_reproduction
from repro.experiments.paper_check import ClaimCheck, ReproductionReport


@pytest.fixture(scope="module")
def report():
    return verify_reproduction()


class TestVerifyReproduction:
    def test_all_claims_pass(self, report):
        assert report.all_passed, [c.claim for c in report.failures()]

    def test_fifteen_claims_checked(self, report):
        assert len(report.checks) == 15
        assert report.n_passed == 15

    def test_covers_both_theorems(self, report):
        claims = " | ".join(c.claim for c in report.checks)
        assert "Theorem 3.1" in claims
        assert "Theorem 3.2" in claims

    def test_covers_every_figure(self, report):
        claims = " | ".join(c.claim for c in report.checks)
        for figure in ("Fig 1", "Fig 2", "Fig 4", "Fig 5", "Fig 6"):
            assert figure in claims

    def test_measured_values_are_strings(self, report):
        for check in report.checks:
            assert isinstance(check.measured, str)
            assert isinstance(check.paper_value, str)


class TestReportStructure:
    def test_failures_listed(self):
        report = ReproductionReport(
            checks=(
                ClaimCheck("a", "1", "1", True),
                ClaimCheck("b", "2", "3", False),
            )
        )
        assert not report.all_passed
        assert report.n_passed == 1
        assert [c.claim for c in report.failures()] == ["b"]


class TestCliVerify:
    def test_cli_reports_all_pass(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "15/15 claims pass" in out
        assert "FAIL" not in out.replace("FAILURES PRESENT", "")
