"""Unit tests for the one-command reproduction runner."""

from __future__ import annotations

import json

import pytest

from repro.experiments import reproduce_all
from repro.experiments.io import load_records_json


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    return reproduce_all(tmp_path_factory.mktemp("bundle"))


class TestBundleContents:
    def test_all_expected_files_written(self, bundle):
        expected = {
            "MANIFEST.txt",
            "report.txt",
            "tables/table1.txt",
            "tables/table2.txt",
            "data/scenarios.json",
            "data/scenarios.csv",
        } | {f"figures/figure{n}.txt" for n in range(1, 7)}
        assert set(bundle.files_written) == expected

    def test_files_exist_on_disk(self, bundle):
        for name in bundle.files_written:
            assert (bundle.output_dir / name).exists(), name

    def test_report_is_green(self, bundle):
        assert bundle.all_claims_pass
        text = (bundle.output_dir / "report.txt").read_text()
        assert "15/15 claims pass" in text

    def test_figure1_contains_optimum(self, bundle):
        text = (bundle.output_dir / "figures" / "figure1.txt").read_text()
        assert "78.43" in text

    def test_json_data_loads_back(self, bundle):
        entries = load_records_json(bundle.output_dir / "data" / "scenarios.json")
        assert len(entries) == 8

    def test_csv_has_nine_lines(self, bundle):
        lines = (
            (bundle.output_dir / "data" / "scenarios.csv")
            .read_text()
            .strip()
            .splitlines()
        )
        assert len(lines) == 9

    def test_manifest_lists_every_file(self, bundle):
        manifest = (bundle.output_dir / "MANIFEST.txt").read_text()
        for name in bundle.files_written:
            if name != "MANIFEST.txt":
                assert name in manifest

    def test_idempotent(self, bundle):
        again = reproduce_all(bundle.output_dir)
        assert set(again.files_written) == set(bundle.files_written)


class TestCliReproduce:
    def test_cli_writes_bundle(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["reproduce", "--output", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "all claims PASS" in out
        assert (tmp_path / "out" / "report.txt").exists()
