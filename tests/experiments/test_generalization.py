"""Unit tests for the generalization study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.generalization import (
    GeneralizationResult,
    generalization_study,
)


@pytest.fixture(scope="module")
def study():
    return generalization_study(
        np.random.default_rng(0), n_configurations=100
    )


class TestStructuralClaims:
    """Theorem-backed claims must hold on every random configuration."""

    def test_true1_always_minimum(self, study):
        assert study.true1_is_minimum == 1.0

    def test_c1_utility_always_peaks_at_true1(self, study):
        assert study.c1_utility_peaks_at_true1 == 1.0

    def test_vp_always_holds(self, study):
        assert study.vp_holds == 1.0

    def test_high_ordering_always_holds(self, study):
        assert study.high_ordering_holds == 1.0

    def test_summary_helper(self, study):
        assert study.structural_claims_universal()


class TestConfigurationDependentClaims:
    def test_most_configs_match_the_paper(self, study):
        # On Table-1-like ensembles the paper's observations mostly
        # generalise...
        assert study.low2_is_worst >= 0.9
        assert study.frugality_within_2_5 >= 0.9
        assert study.low2_utility_negative >= 0.9

    def test_frugality_band_fails_on_small_dominated_systems(self):
        # ...but the <=2.5x frugality claim is a configuration artefact:
        # tiny, highly heterogeneous systems exceed it routinely
        # (closed form 1 + sum s/(S-s) blows up under dominance).
        study = generalization_study(
            np.random.default_rng(1),
            n_configurations=100,
            n_machines_range=(2, 4),
            t_range=(1.0, 100.0),
        )
        assert study.frugality_within_2_5 < 0.8
        # Theorems are indifferent to the configuration distribution.
        assert study.structural_claims_universal()

    def test_result_fields_are_fractions(self, study):
        for name in (
            "true1_is_minimum",
            "low2_is_worst",
            "frugality_within_2_5",
            "low2_utility_negative",
        ):
            value = getattr(study, name)
            assert 0.0 <= value <= 1.0


class TestValidation:
    def test_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generalization_study(rng, n_configurations=0)
        with pytest.raises(ValueError):
            generalization_study(rng, n_machines_range=(1, 4))
        with pytest.raises(ValueError):
            generalization_study(rng, load_per_machine=0.0)

    def test_reproducible(self):
        a = generalization_study(np.random.default_rng(5), n_configurations=20)
        b = generalization_study(np.random.default_rng(5), n_configurations=20)
        assert a == b

    def test_result_type(self, study):
        assert isinstance(study, GeneralizationResult)
        assert study.n_configurations == 100
