"""Unit tests for the Table 1 configuration module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import table1_configuration
from repro.experiments.table1 import (
    TABLE1_ARRIVAL_RATE,
    TABLE1_TRUE_VALUES,
    Table1Configuration,
)


class TestTable1Consistency:
    def test_groups_expand_to_the_cluster(self):
        config = table1_configuration()
        expanded = []
        sizes = {"C1 - C2": 2, "C3 - C5": 3, "C6 - C10": 5, "C11 - C16": 6}
        for label, value in config.groups:
            expanded.extend([value] * sizes[label])
        np.testing.assert_allclose(config.cluster.true_values, expanded)

    def test_module_constants_match(self):
        config = table1_configuration()
        np.testing.assert_allclose(config.cluster.true_values, TABLE1_TRUE_VALUES)
        assert config.arrival_rate == TABLE1_ARRIVAL_RATE == 20.0

    def test_configuration_is_frozen(self):
        config = table1_configuration()
        with pytest.raises(AttributeError):
            config.arrival_rate = 5.0

    def test_each_call_is_equivalent(self):
        a = table1_configuration()
        b = table1_configuration()
        np.testing.assert_allclose(a.cluster.true_values, b.cluster.true_values)

    def test_type(self):
        assert isinstance(table1_configuration(), Table1Configuration)

    def test_headline_optimum_derives_from_the_constants(self):
        # The single arithmetic fact everything else hangs on.
        optimum = TABLE1_ARRIVAL_RATE**2 / float(
            np.sum(1.0 / np.asarray(TABLE1_TRUE_VALUES))
        )
        assert optimum == pytest.approx(78.43, abs=0.005)
