"""Prebuilt campaigns and the payload -> ExperimentRecord reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import run_all_scenarios
from repro.experiments.table1 import table1_configuration
from repro.experiments.table2 import PAPER_SCENARIOS
from repro.parallel import (
    CampaignEngine,
    figures_campaign_units,
    protocol_units,
    records_from_campaign,
    run_figures_campaign,
    scenario_units,
)


class TestUnitBuilders:
    def test_scenario_units_cover_table2(self):
        units = scenario_units()
        assert [u.scenario for u in units] == [
            s.name for s in PAPER_SCENARIOS
        ]
        assert all(u.kind == "scenario" for u in units)

    def test_protocol_units_cross_scenarios_and_seeds(self):
        units = protocol_units(seeds=(0, 1, 2), duration=30.0)
        assert len(units) == 8 * 3
        assert {u.seed for u in units} == {0, 1, 2}
        assert all(u.duration == 30.0 for u in units)

    def test_figures_campaign_composition(self):
        assert len(figures_campaign_units()) == 8
        assert len(figures_campaign_units(seeds=(0, 1))) == 8 + 16


class TestRecordReconstruction:
    def test_records_bit_identical_to_inline(self):
        config = table1_configuration()
        campaign = CampaignEngine(workers=0).run(scenario_units(config))
        rebuilt = records_from_campaign(campaign)
        inline = run_all_scenarios(config)
        assert len(rebuilt) == len(inline)
        for ours, theirs in zip(rebuilt, inline):
            assert ours.scenario == theirs.scenario
            assert ours.total_latency == theirs.total_latency
            assert ours.c1_payment == theirs.c1_payment
            assert ours.c1_utility == theirs.c1_utility
            np.testing.assert_array_equal(
                ours.outcome.payments.payment, theirs.outcome.payments.payment
            )
            np.testing.assert_array_equal(
                ours.outcome.payments.utility, theirs.outcome.payments.utility
            )
            assert ours.outcome.frugality_ratio == theirs.outcome.frugality_ratio

    def test_cache_round_trip_preserves_records(self, tmp_path):
        config = table1_configuration()
        cache = tmp_path / "cache"
        CampaignEngine(workers=0, cache=cache).run(scenario_units(config))
        cached = CampaignEngine(workers=0, cache=cache).run(
            scenario_units(config)
        )
        assert cached.stats.cache_hits == 8
        rebuilt = records_from_campaign(cached)
        inline = run_all_scenarios(config)
        for ours, theirs in zip(rebuilt, inline):
            assert ours.total_latency == theirs.total_latency


class TestRunFiguresCampaign:
    def test_default_engine_serial(self):
        campaign = run_figures_campaign()
        assert len(campaign.records) == 8
        assert campaign.stats.n_units == 8
        assert round(campaign.records[0].total_latency, 2) == 78.43

    def test_protocol_payloads_keyed_by_scenario_seed(self):
        campaign = run_figures_campaign(
            seeds=(0,), duration=20.0,
        )
        payloads = campaign.protocol_payloads()
        assert set(payloads) == {(s.name, 0) for s in PAPER_SCENARIOS}
        assert all(p["jobs_routed"] > 0 for p in payloads.values())


class TestEnginePathInRunAllScenarios:
    def test_engine_path_matches_inline(self):
        engine = CampaignEngine(workers=0)
        via_engine = run_all_scenarios(engine=engine)
        inline = run_all_scenarios()
        for ours, theirs in zip(via_engine, inline):
            assert ours.total_latency == theirs.total_latency

    def test_engine_plus_mechanism_rejected(self):
        from repro.mechanism import VCGMechanism

        with pytest.raises(ValueError):
            run_all_scenarios(
                mechanism=VCGMechanism(), engine=CampaignEngine(workers=0)
            )
