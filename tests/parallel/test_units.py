"""Unit config, canonicalisation, cache keys, and pure execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import run_scenario
from repro.experiments.table1 import table1_configuration
from repro.experiments.table2 import scenario_by_name
from repro.parallel.units import (
    ExperimentUnit,
    canonical_json,
    canonicalise,
    execute_unit,
    unit_cache_key,
)


def paper_unit(**overrides) -> ExperimentUnit:
    config = table1_configuration()
    kwargs = dict(
        kind="scenario",
        scenario="True1",
        bid_factor=1.0,
        execution_factor=1.0,
        true_values=tuple(config.cluster.true_values.tolist()),
        arrival_rate=config.arrival_rate,
    )
    kwargs.update(overrides)
    return ExperimentUnit(**kwargs)


class TestExperimentUnit:
    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            paper_unit(kind="nope")
        with pytest.raises(ValueError):
            paper_unit(variant="nope")
        with pytest.raises(ValueError):
            paper_unit(true_values=(1.0,))
        with pytest.raises(ValueError):
            paper_unit(true_values=(1.0, -2.0))
        with pytest.raises(ValueError):
            paper_unit(bid_factor=0.0)
        with pytest.raises(ValueError):
            paper_unit(execution_factor=0.5)
        with pytest.raises(ValueError):
            paper_unit(arrival_rate=-1.0)
        with pytest.raises(ValueError):
            paper_unit(manipulator=99)
        with pytest.raises(ValueError):
            paper_unit(kind="protocol", duration=0.0)

    def test_config_round_trip(self):
        unit = paper_unit(kind="protocol", seed=7, duration=55.0)
        assert ExperimentUnit.from_config(unit.as_config()) == unit

    def test_scenario_config_drops_seed_and_duration(self):
        a = paper_unit(seed=0, duration=200.0)
        b = paper_unit(seed=99, duration=10.0)
        assert a.as_config() == b.as_config()
        assert unit_cache_key(a) == unit_cache_key(b)

    def test_protocol_config_keeps_seed_and_duration(self):
        a = paper_unit(kind="protocol", seed=0)
        b = paper_unit(kind="protocol", seed=1)
        assert unit_cache_key(a) != unit_cache_key(b)


class TestManipulatorCoalitions:
    """The tournament's multi-liar field rides on the same cache rules."""

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            paper_unit(manipulators=())
        with pytest.raises(ValueError, match="distinct"):
            paper_unit(manipulators=(1, 1))
        with pytest.raises(ValueError, match="out of range"):
            paper_unit(manipulators=(0, 99))

    def test_coalition_is_sorted_and_pins_the_manipulator(self):
        unit = paper_unit(manipulators=(5, 2), manipulator=9)
        assert unit.manipulators == (2, 5)
        assert unit.manipulator == 2

    def test_single_manipulator_units_keep_their_keys(self):
        # The optional field must not perturb any pre-existing key.
        assert "manipulators" not in paper_unit().as_config()
        assert unit_cache_key(paper_unit()) == unit_cache_key(
            paper_unit(manipulators=None)
        )

    def test_coalition_changes_the_key(self):
        base = unit_cache_key(paper_unit(bid_factor=3.0))
        pair = unit_cache_key(paper_unit(bid_factor=3.0, manipulators=(0, 1)))
        assert pair != base
        assert pair != unit_cache_key(
            paper_unit(bid_factor=3.0, manipulators=(0, 2))
        )

    def test_config_round_trip(self):
        unit = paper_unit(manipulators=(0, 3), bid_factor=0.5,
                          execution_factor=2.0)
        assert ExperimentUnit.from_config(unit.as_config()) == unit

    def test_scenario_profile_applies_factors_to_every_member(self):
        unit = paper_unit(bid_factor=3.0, execution_factor=3.0,
                          manipulators=(0, 1))
        payload = execute_unit(unit)
        t = np.asarray(unit.true_values)
        assert payload["bids"][:2] == (3.0 * t[:2]).tolist()
        assert payload["execution_values"][:2] == (3.0 * t[:2]).tolist()
        assert payload["bids"][2:] == t[2:].tolist()

    def test_coalition_of_one_matches_the_single_manipulator_payload(self):
        single = paper_unit(bid_factor=3.0, manipulator=1)
        coalition = paper_unit(bid_factor=3.0, manipulators=(1,))
        assert execute_unit(single) == execute_unit(coalition)

    def test_protocol_coalition_has_two_manipulative_agents(self):
        unit = paper_unit(
            kind="protocol", bid_factor=3.0, execution_factor=3.0,
            manipulators=(0, 1), duration=20.0,
        )
        payload = execute_unit(unit)
        t = np.asarray(unit.true_values)
        assert payload["true_execution_values"][:2] == (3.0 * t[:2]).tolist()
        assert payload["true_execution_values"][2:] == t[2:].tolist()


class TestCanonicalise:
    def test_dict_order_is_erased(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )

    def test_numpy_width_is_erased(self):
        assert canonicalise(np.int32(5)) == canonicalise(np.int64(5)) == 5
        assert canonicalise(np.float32(0.5)) == canonicalise(np.float64(0.5))

    def test_arrays_and_tuples_become_lists(self):
        assert canonicalise(np.array([1.0, 2.0])) == [1.0, 2.0]
        assert canonicalise((1, 2)) == [1, 2]

    def test_negative_zero_normalised(self):
        assert canonical_json(-0.0) == canonical_json(0.0)

    def test_nan_and_inf_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                canonicalise(bad)

    def test_unhashable_types_rejected(self):
        with pytest.raises(TypeError):
            canonicalise(object())


class TestCacheKey:
    def test_key_is_hex_blake2b_256(self):
        key = unit_cache_key(paper_unit())
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_version_is_part_of_the_key(self):
        unit = paper_unit()
        assert unit_cache_key(unit, version="1.0.0") != unit_cache_key(
            unit, version="1.0.1"
        )

    def test_key_matches_unspliced_canonical_envelope(self):
        # The fast path memoizes the config encoding and splices it into
        # the {"config": ..., "version": ...} envelope byte-wise. Pin it
        # against the naive construction: canonicalise the whole
        # envelope, then hash — the two must never diverge, or warm
        # caches silently go cold on upgrade.
        import hashlib

        import repro

        for unit in (
            paper_unit(),
            paper_unit(variant="drift", seed=5),
            paper_unit(kind="protocol", seed=7, duration=25.0),
        ):
            # version=None resolves to the package version inside the key.
            for version in (repro.__version__, "9.9.9"):
                envelope = {
                    "config": unit.as_config(),
                    "version": version,
                }
                expected = hashlib.blake2b(
                    canonical_json(envelope).encode("utf-8"), digest_size=32
                ).hexdigest()
                assert unit_cache_key(unit, version=version) == expected
                if version == repro.__version__:
                    assert unit_cache_key(unit) == expected

    def test_config_encoding_is_memoized_per_unit(self):
        from repro.parallel.units import _canonical_config_bytes

        unit = paper_unit(kind="protocol", seed=11)
        before = _canonical_config_bytes.cache_info()
        unit_cache_key(unit)
        unit_cache_key(unit)
        after = _canonical_config_bytes.cache_info()
        assert after.hits >= before.hits + 1
        # Memoization must not leak across distinct configs (the seed is
        # part of a protocol unit's config, unlike a scenario unit's).
        assert unit_cache_key(
            paper_unit(kind="protocol", seed=12)
        ) != unit_cache_key(unit)

    def test_any_result_affecting_field_changes_the_key(self):
        base = unit_cache_key(paper_unit())
        assert unit_cache_key(paper_unit(bid_factor=3.0)) != base
        assert unit_cache_key(paper_unit(execution_factor=2.0)) != base
        assert unit_cache_key(paper_unit(variant="vcg")) != base
        assert unit_cache_key(paper_unit(arrival_rate=21.0)) != base
        assert unit_cache_key(paper_unit(manipulator=1)) != base


class TestExecuteUnit:
    def test_scenario_payload_matches_inline_run(self):
        config = table1_configuration()
        for name in ("True1", "High1", "Low2"):
            scenario = scenario_by_name(name)
            unit = paper_unit(
                scenario=name,
                bid_factor=scenario.bid_factor,
                execution_factor=scenario.execution_factor,
            )
            payload = execute_unit(unit)
            record = run_scenario(scenario, config)
            assert payload["realised_latency"] == record.outcome.realised_latency
            assert payload["payment"] == record.outcome.payments.payment.tolist()
            assert payload["utility"] == record.outcome.payments.utility.tolist()

    def test_execution_is_deterministic(self):
        unit = paper_unit(kind="protocol", seed=3, duration=20.0)
        assert execute_unit(unit) == execute_unit(unit)

    def test_protocol_payload_has_des_fields(self):
        payload = execute_unit(paper_unit(kind="protocol", duration=20.0))
        assert payload["jobs_routed"] > 0
        assert payload["total_messages"] > 0
        assert len(payload["estimated_execution_values"]) == 16

    def test_payload_is_json_safe(self):
        import json

        payload = execute_unit(paper_unit(kind="protocol", duration=20.0))
        assert json.loads(json.dumps(payload)) == payload


class TestExecutionEngineField:
    """Protocol units carry the job execution engine into the cache key."""

    def test_invalid_execution_rejected(self):
        with pytest.raises(ValueError, match="execution must be"):
            paper_unit(kind="protocol", execution="bogus")

    def test_auto_and_batched_share_one_cache_entry(self):
        auto = paper_unit(kind="protocol", execution="auto")
        batched = paper_unit(kind="protocol", execution="batched")
        assert auto.as_config()["execution"] == "batched"
        assert unit_cache_key(auto) == unit_cache_key(batched)

    def test_event_engine_gets_its_own_cache_entry(self):
        event = paper_unit(kind="protocol", execution="event")
        auto = paper_unit(kind="protocol")
        assert unit_cache_key(event) != unit_cache_key(auto)

    def test_scenario_config_omits_the_engine(self):
        # Scenario units run the closed-form mechanism: no job stream,
        # so the engine must not perturb their cache keys.
        assert "execution" not in paper_unit().as_config()

    def test_batched_protocol_payload_executes(self):
        unit = paper_unit(
            kind="protocol", seed=3, duration=20.0, execution="batched"
        )
        payload = execute_unit(unit)
        assert payload["jobs_routed"] > 0
        assert len(payload["estimated_execution_values"]) == 16
