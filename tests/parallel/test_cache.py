"""The content-addressed result cache: layout, atomicity, corruption."""

from __future__ import annotations

import json

import pytest

from repro.parallel.cache import NullCache, ResultCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestLayout:
    def test_two_level_fanout(self, cache):
        path = cache.path_for(KEY)
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.json"

    def test_short_keys_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.path_for("ab")


class TestRoundTrip:
    def test_get_miss_returns_none(self, cache):
        assert cache.get(KEY) is None
        assert KEY not in cache
        assert len(cache) == 0

    def test_put_then_get(self, cache):
        payload = {"realised_latency": 78.43, "loads": [1.0, 2.0]}
        cache.put(KEY, payload, unit_config={"kind": "scenario"})
        assert cache.get(KEY) == payload
        assert KEY in cache
        assert list(cache.keys()) == [KEY]

    def test_envelope_records_provenance(self, cache):
        cache.put(KEY, {"x": 1}, unit_config={"kind": "scenario"},
                  version="9.9.9")
        envelope = cache.entry(KEY)
        assert envelope["key"] == KEY
        assert envelope["version"] == "9.9.9"
        assert envelope["unit"] == {"kind": "scenario"}

    def test_floats_round_trip_exactly(self, cache):
        values = [0.1, 1 / 3, 2**-52, 1e300, 78.43]
        cache.put(KEY, {"values": values})
        assert cache.get(KEY)["values"] == values

    def test_overwrite_replaces(self, cache):
        cache.put(KEY, {"v": 1})
        cache.put(KEY, {"v": 2})
        assert cache.get(KEY) == {"v": 2}
        assert len(cache) == 1

    def test_clear_removes_everything(self, cache):
        cache.put(KEY, {"v": 1})
        cache.put(OTHER, {"v": 2})
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCorruption:
    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get(KEY) is None
        assert not path.exists()

    def test_non_envelope_json_is_a_miss(self, cache):
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert cache.get(KEY) is None
        assert not path.exists()

    def test_no_temp_files_left_behind(self, cache):
        cache.put(KEY, {"v": 1})
        leftovers = [
            p for p in cache.root.rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        cache.put(KEY, {"v": 1})
        assert cache.get(KEY) is None
        assert cache.entry(KEY) is None
        assert KEY not in cache
        assert len(cache) == 0
