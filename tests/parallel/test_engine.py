"""Campaign engine: scheduling, caching, determinism, observability."""

from __future__ import annotations

import pytest

from repro.experiments.table1 import table1_configuration
from repro.observability import instrumented
from repro.parallel.cache import ResultCache
from repro.parallel.campaigns import protocol_units, scenario_units
from repro.parallel.engine import (
    CampaignEngine,
    default_chunk_size,
    parallel_map,
)


def _square(x: int) -> int:
    return x * x


class TestChunking:
    def test_default_chunk_size_targets_oversubscription(self):
        # 64 units over 4 workers -> 16 chunks of 4.
        assert default_chunk_size(64, 4) == 4

    def test_degenerate_inputs(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(3, 16) == 1
        assert default_chunk_size(5, 0) == 2


class TestParallelMap:
    def test_serial_path_is_plain_map(self):
        assert parallel_map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_parallel_preserves_order(self):
        assert parallel_map(_square, range(20), workers=2) == [
            i * i for i in range(20)
        ]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []


@pytest.fixture
def units():
    return scenario_units(table1_configuration())


class TestEngineValidation:
    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            CampaignEngine(workers=-1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            CampaignEngine(chunk_size=0)

    def test_cache_path_coerced(self, tmp_path):
        engine = CampaignEngine(cache=tmp_path / "c")
        assert isinstance(engine.cache, ResultCache)


class TestSerialRun:
    def test_true1_optimum(self, units):
        result = CampaignEngine(workers=0).run(units)
        assert round(result.payloads[0]["realised_latency"], 2) == 78.43
        assert result.stats.n_units == 8
        assert result.stats.cache_misses == 8
        assert result.stats.cache_hits == 0

    def test_payload_for_looks_up_by_value(self, units):
        result = CampaignEngine(workers=0).run(units)
        assert result.payload_for(units[3]) is result.payloads[3]

    def test_empty_campaign(self):
        result = CampaignEngine(workers=0).run([])
        assert result.stats.n_units == 0
        assert result.payloads == ()


class TestCacheIntegration:
    def test_second_run_is_all_hits(self, tmp_path, units):
        cache = tmp_path / "cache"
        first = CampaignEngine(workers=0, cache=cache).run(units)
        second = CampaignEngine(workers=0, cache=cache).run(units)
        assert first.stats.cache_misses == 8
        assert second.stats.cache_hits == 8
        assert second.payloads == first.payloads
        assert second.stats.chunks == 0

    def test_reuse_cache_false_recomputes_but_writes(self, tmp_path, units):
        cache = tmp_path / "cache"
        CampaignEngine(workers=0, cache=cache).run(units)
        refresh = CampaignEngine(
            workers=0, cache=cache, reuse_cache=False
        ).run(units)
        assert refresh.stats.cache_hits == 0
        assert refresh.stats.cache_misses == 8
        assert len(ResultCache(cache)) == 8

    def test_changed_config_misses(self, tmp_path, units):
        cache = tmp_path / "cache"
        CampaignEngine(workers=0, cache=cache).run(units)
        changed = scenario_units(table1_configuration(), variant="vcg")
        result = CampaignEngine(workers=0, cache=cache).run(changed)
        assert result.stats.cache_hits == 0


class TestParallelDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        units = scenario_units() + protocol_units(
            seeds=(0, 1), duration=20.0
        )
        serial = CampaignEngine(workers=0).run(units)
        parallel = CampaignEngine(workers=2).run(units)
        assert parallel.payloads == serial.payloads
        assert parallel.keys == serial.keys

    def test_mixed_cache_and_compute(self, tmp_path):
        units = protocol_units(seeds=(0, 1, 2), duration=20.0,
                               scenarios=("True1",))
        cache = tmp_path / "cache"
        CampaignEngine(workers=0, cache=cache).run(units[:2])
        result = CampaignEngine(workers=0, cache=cache).run(units)
        assert result.stats.cache_hits == 2
        assert result.stats.cache_misses == 1
        fresh = CampaignEngine(workers=0).run(units)
        assert result.payloads == fresh.payloads


class TestObservability:
    def test_counters_histograms_and_spans(self, tmp_path, units):
        cache = tmp_path / "cache"
        with instrumented() as instr:
            CampaignEngine(workers=0, cache=cache).run(units)
            CampaignEngine(workers=0, cache=cache).run(units)
        snapshot = instr.metrics.snapshot()
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert counters["campaign.cache.hits"] == 8
        assert counters["campaign.cache.misses"] == 8
        histograms = {h["name"]: h["count"] for h in snapshot["histograms"]}
        assert histograms["campaign.unit.seconds"] == 8
        names = [s.name for s in instr.tracer.finished]
        assert names.count("campaign.run") == 2

    def test_worker_spans_exported_jsonl(self, tmp_path, units):
        import json

        # Worker-side campaign.unit spans are a per-unit-path contract:
        # fused cohorts trace one ambient campaign.cohort span instead.
        result = CampaignEngine(workers=0, fuse="off").run(units)
        destination = tmp_path / "spans.jsonl"
        count = result.export_worker_spans(destination)
        assert count == 8
        lines = destination.read_text().splitlines()
        assert len(lines) == 8
        span = json.loads(lines[0])
        assert span["name"] == "campaign.unit"
        assert span["attributes"]["kind"] == "scenario"
        assert "pid" in span["attributes"]
