"""Fused campaign backend: cohort grouping, bit-parity, engine wiring.

The contract under test (DESIGN.md §14): fusion is a *scheduling*
change, never a numerical one — a fused payload is ``repr``-identical
to ``execute_unit``'s for the same unit, cohort results land in the
cache under unchanged keys, and everything without a stacked closed
form falls back to the per-unit path untouched.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.table1 import table1_configuration
from repro.observability import instrumented
from repro.parallel import (
    CampaignEngine,
    ExperimentUnit,
    default_chunk_size,
    execute_unit,
    protocol_units,
    scenario_units,
)
from repro.parallel.fusion import (
    cohort_key,
    execute_cohort,
    fusable,
    partition_pending,
)

FUSABLE_VARIANTS = ("observed", "declared", "vcg", "archer-tardos")

BENCH_ARTIFACT = (
    Path(__file__).resolve().parent.parent.parent
    / "benchmarks" / "results" / "BENCH_campaign_fusion.json"
)


def _unit(
    variant: str = "observed",
    true_values: tuple = (1.0, 2.0, 4.0),
    **overrides,
) -> ExperimentUnit:
    defaults = dict(
        kind="scenario",
        scenario="t",
        bid_factor=1.0,
        execution_factor=1.0,
        true_values=true_values,
        arrival_rate=1.25 * len(true_values),
        variant=variant,
    )
    defaults.update(overrides)
    return ExperimentUnit(**defaults)


# ---------------------------------------------------------- cohort rules


class TestCohortRules:
    @pytest.mark.parametrize("variant", FUSABLE_VARIANTS)
    def test_closed_form_scenario_units_are_fusable(self, variant):
        assert fusable(_unit(variant))

    def test_dynamics_and_protocol_are_not(self):
        assert not fusable(_unit("dynamics"))
        protocol = protocol_units(seeds=(0,), duration=20.0)[0]
        assert not fusable(protocol)

    def test_cohort_key_is_variant_and_machine_count(self):
        assert cohort_key(_unit("vcg")) == ("vcg", 3)
        assert cohort_key(_unit("vcg", true_values=(1.0, 2.0))) == ("vcg", 2)

    def test_off_fuses_nothing(self):
        pending = list(enumerate([_unit(), _unit()]))
        cohorts, fallback = partition_pending(pending, "off")
        assert cohorts == [] and fallback == pending

    def test_auto_leaves_singleton_cohorts_on_the_per_unit_path(self):
        pending = list(enumerate([_unit("observed"), _unit("vcg")]))
        cohorts, fallback = partition_pending(pending, "auto")
        assert cohorts == [] and fallback == pending

    def test_on_fuses_singletons_too(self):
        pending = list(enumerate([_unit("observed"), _unit("vcg")]))
        cohorts, fallback = partition_pending(pending, "on")
        assert len(cohorts) == 2 and fallback == []

    def test_partition_preserves_submission_order(self):
        units = [
            _unit("observed", bid_factor=0.5),
            _unit("dynamics"),
            _unit("vcg"),
            _unit("observed", bid_factor=2.0),
            _unit("dynamics", bid_factor=0.5),
            _unit("vcg", bid_factor=2.0),
        ]
        cohorts, fallback = partition_pending(list(enumerate(units)), "auto")
        assert [[i for i, _ in c] for c in cohorts] == [[0, 3], [2, 5]]
        assert [i for i, _ in fallback] == [1, 4]

    def test_unknown_mode_rejected_everywhere(self):
        with pytest.raises(ValueError, match="fuse"):
            partition_pending([], "sometimes")
        with pytest.raises(ValueError, match="fuse"):
            CampaignEngine(fuse="sometimes")

    def test_execute_cohort_rejects_mixed_and_unfusable(self):
        with pytest.raises(ValueError, match="mixes"):
            execute_cohort([_unit("observed"), _unit("vcg")])
        with pytest.raises(ValueError, match="no fused evaluation"):
            execute_cohort([_unit("dynamics")])
        assert execute_cohort([]) == []


# ------------------------------------------------------------ bit-parity


@st.composite
def _cohorts(draw):
    """A homogeneous cohort with varied profiles and coalitions."""
    variant = draw(st.sampled_from(FUSABLE_VARIANTS))
    n = draw(st.integers(min_value=2, max_value=6))
    size = draw(st.integers(min_value=1, max_value=7))
    units = []
    for _ in range(size):
        true_values = tuple(
            draw(
                st.lists(
                    st.floats(min_value=0.1, max_value=10.0),
                    min_size=n, max_size=n,
                )
            )
        )
        coalition = draw(
            st.one_of(
                st.none(),
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1, max_size=n,
                ).map(lambda s: tuple(sorted(s))),
            )
        )
        units.append(
            _unit(
                variant,
                true_values=true_values,
                bid_factor=draw(st.floats(min_value=0.1, max_value=5.0)),
                execution_factor=draw(st.floats(min_value=1.0, max_value=4.0)),
                arrival_rate=draw(st.floats(min_value=0.5, max_value=30.0)),
                manipulator=draw(st.integers(min_value=0, max_value=n - 1)),
                manipulators=coalition,
            )
        )
    return units


class TestBitParity:
    @given(units=_cohorts())
    @settings(max_examples=60, deadline=None)
    def test_fused_payloads_repr_identical_to_execute_unit(self, units):
        # repr-level equality is the cache's own round-trip fidelity:
        # identical reprs serialize to identical JSON payloads.
        fused = execute_cohort(units)
        for unit, payload in zip(units, fused):
            expected = execute_unit(unit)
            assert payload.keys() == expected.keys()
            for field, value in expected.items():
                assert repr(payload[field]) == repr(value), (
                    unit.variant, field,
                )

    def test_paper_grid_parity_through_the_engine(self):
        config = table1_configuration()
        units = []
        for variant in FUSABLE_VARIANTS:
            units += scenario_units(config, variant=variant)
        off = CampaignEngine(workers=0, fuse="off").run(units)
        on = CampaignEngine(workers=0, fuse="on").run(units)
        assert on.keys == off.keys
        assert [repr(p) for p in on.payloads] == [
            repr(p) for p in off.payloads
        ]


# --------------------------------------------------------- engine wiring


class TestEngineFusion:
    def test_auto_fuses_the_scenario_campaign(self):
        result = CampaignEngine(workers=0).run(scenario_units())
        assert result.stats.fused_cohorts == 1
        assert result.stats.fused_units == 8
        assert result.stats.fallback_units == 0
        assert result.stats.chunks == 0
        assert len(result.stats.unit_seconds) == 8

    def test_mixed_campaign_splits_by_fusability(self):
        units = scenario_units() + protocol_units(
            seeds=(0,), duration=20.0, scenarios=("True1", "Low2")
        )
        result = CampaignEngine(workers=0).run(units)
        assert result.stats.fused_units == 8
        assert result.stats.fallback_units == 2
        assert (
            result.stats.fused_units + result.stats.fallback_units
            == result.stats.cache_misses
        )
        fresh = CampaignEngine(workers=0, fuse="off").run(units)
        assert result.payloads == fresh.payloads

    def test_chunks_are_sized_over_fallback_misses_only(self):
        # 8 fusable + 3 protocol units at 2 workers: the pool must see
        # chunks sized for the 3 fallback misses, not the 11 submitted.
        units = scenario_units() + protocol_units(
            seeds=(0, 1, 2), duration=20.0, scenarios=("True1",)
        )
        engine = CampaignEngine(workers=2)
        result = engine.run(units)
        workers = min(2, result.stats.fallback_units)
        expected_size = default_chunk_size(
            result.stats.fallback_units, workers
        )
        expected_chunks = -(-result.stats.fallback_units // expected_size)
        assert result.stats.chunks == expected_chunks

    def test_fused_cache_serves_per_unit_runs(self, tmp_path):
        cache = tmp_path / "cache"
        units = scenario_units()
        cold = CampaignEngine(workers=0, cache=cache, fuse="on").run(units)
        warm = CampaignEngine(workers=0, cache=cache, fuse="off").run(units)
        assert cold.stats.fused_units == 8
        assert warm.stats.hit_rate == 1.0
        assert warm.stats.chunks == 0
        assert warm.payloads == cold.payloads

    def test_fusion_counters_and_cohort_spans_recorded(self, tmp_path):
        with instrumented() as instr:
            CampaignEngine(workers=0, cache=tmp_path / "c").run(
                scenario_units()
            )
        snapshot = instr.metrics.snapshot()
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert counters["campaign.fused.cohorts"] == 1
        assert counters["campaign.fused.units"] == 8
        assert counters["campaign.fallback.units"] == 0
        histograms = {h["name"]: h["count"] for h in snapshot["histograms"]}
        assert histograms["campaign.unit.seconds"] == 8
        names = [s.name for s in instr.tracer.finished]
        assert names.count("campaign.cohort") == 1
        assert names.count("campaign.unit") == 0

    def test_fuse_off_keeps_the_per_unit_span_contract(self):
        result = CampaignEngine(workers=0, fuse="off").run(scenario_units())
        assert result.stats.fused_units == 0
        assert result.stats.fallback_units == 8
        assert len(result.worker_spans) == 8


# ------------------------------------------------------ pinned artifact


class TestCommittedBenchArtifact:
    """The committed A26 record must exist and show a passing gate."""

    def test_committed_summary_passes_its_own_gate(self):
        assert BENCH_ARTIFACT.exists(), (
            "benchmarks/results/BENCH_campaign_fusion.json is missing; "
            "regenerate it with "
            "`PYTHONPATH=src python benchmarks/bench_campaign_fusion.py`"
        )
        summary = json.loads(BENCH_ARTIFACT.read_text())
        assert summary["speedup_target"] >= 10.0
        gated = set(summary["gated_campaigns"])
        assert {"tournament", "figures"} <= set(
            e["campaign"] for e in summary["campaigns"]
        )
        for entry in summary["campaigns"]:
            assert entry["payload_mismatches"] == 0
            assert entry["keys_identical"]
            assert entry["warm_hit_rate"] == 1.0
            assert entry["warm_chunks"] == 0
            if entry["campaign"] in gated:
                assert entry["speedup"] >= summary["speedup_target"]
