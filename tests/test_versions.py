"""The three version declarations must agree (tools/check_versions.py).

CI runs the tool directly in the docs job; this test keeps the same
invariant inside the tier-1 suite so a version bump can never land
half-done.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import repro

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_versions.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_versions", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_version_declarations_agree():
    checker = _load_checker()
    assert checker.check() == []


def test_textual_parse_matches_the_imported_package():
    # The tool parses the file textually (it must work pre-install);
    # the parse must agree with what Python actually imports.
    assert _load_checker().init_version() == repro.__version__
