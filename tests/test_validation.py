"""Unit tests for the shared validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (
    as_float_array,
    check_finite,
    check_index,
    check_nonnegative,
    check_nonnegative_scalar,
    check_positive,
    check_positive_scalar,
    check_same_length,
)


class TestAsFloatArray:
    def test_list_converts_to_float64(self):
        arr = as_float_array([1, 2, 3], "x")
        assert arr.dtype == np.float64
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_scalar_becomes_length_one(self):
        assert as_float_array(5, "x").shape == (1,)

    def test_existing_float_array_is_not_copied(self):
        arr = np.array([1.0, 2.0])
        assert as_float_array(arr, "x") is arr

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_float_array(np.ones((2, 2)), "x")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            as_float_array([], "x")

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            as_float_array([1.0, np.nan], "x")

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            as_float_array([np.inf], "x")

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="myarg"):
            as_float_array([], "myarg")


class TestSignChecks:
    def test_check_positive_accepts_positive(self):
        check_positive(np.array([0.1, 5.0]), "x")

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="strictly positive"):
            check_positive(np.array([1.0, 0.0]), "x")

    def test_check_nonnegative_accepts_zero(self):
        check_nonnegative(np.array([0.0, 1.0]), "x")

    def test_check_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_nonnegative(np.array([-1e-9]), "x")

    def test_check_finite_rejects_nan(self):
        with pytest.raises(ValueError):
            check_finite(np.array([np.nan]), "x")


class TestScalarChecks:
    def test_positive_scalar_returns_float(self):
        value = check_positive_scalar(3, "x")
        assert isinstance(value, float)
        assert value == 3.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_scalar_rejections(self, bad):
        with pytest.raises(ValueError):
            check_positive_scalar(bad, "x")

    def test_nonnegative_scalar_accepts_zero(self):
        assert check_nonnegative_scalar(0, "x") == 0.0

    def test_nonnegative_scalar_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_scalar(-0.5, "x")


class TestStructureChecks:
    def test_same_length_ok(self):
        check_same_length("a", [1, 2], "b", np.zeros(2))

    def test_same_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            check_same_length("a", [1], "b", [1, 2])

    def test_check_index_valid(self):
        assert check_index(2, 5) == 2

    @pytest.mark.parametrize("bad", [-1, 5, 100])
    def test_check_index_out_of_range(self, bad):
        with pytest.raises(IndexError):
            check_index(bad, 5)
