"""Unit tests for the result containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import AllocationResult, MechanismOutcome, PaymentResult


def _allocation() -> AllocationResult:
    return AllocationResult(
        loads=np.array([2.0, 1.0]),
        arrival_rate=3.0,
        bids=np.array([1.0, 2.0]),
        total_latency=6.0,
    )


class TestAllocationResult:
    def test_arrays_are_read_only(self):
        alloc = _allocation()
        with pytest.raises(ValueError):
            alloc.loads[0] = 99.0
        with pytest.raises(ValueError):
            alloc.bids[0] = 99.0

    def test_n_machines(self):
        assert _allocation().n_machines == 2

    def test_fractions_sum_to_one(self):
        assert _allocation().fractions.sum() == pytest.approx(1.0)

    def test_latency_under_execution_values(self):
        alloc = _allocation()
        # sum t̃_i x_i^2 = 2*4 + 1*1 = 9
        assert alloc.latency_under(np.array([2.0, 1.0])) == pytest.approx(9.0)

    def test_latency_under_declared_matches_total(self):
        alloc = _allocation()
        assert alloc.latency_under(alloc.bids) == pytest.approx(alloc.total_latency)

    def test_input_array_mutation_does_not_leak(self):
        loads = np.array([2.0, 1.0])
        alloc = AllocationResult(
            loads=loads, arrival_rate=3.0, bids=np.array([1.0, 2.0]), total_latency=6.0
        )
        loads[0] = 50.0
        assert alloc.loads[0] == 2.0


class TestPaymentResult:
    def _payments(self) -> PaymentResult:
        return PaymentResult(
            compensation=np.array([4.0, 1.0]),
            bonus=np.array([2.0, -0.5]),
            valuation=np.array([-4.0, -1.0]),
        )

    def test_payment_identity(self):
        p = self._payments()
        np.testing.assert_allclose(p.payment, p.compensation + p.bonus)

    def test_utility_identity(self):
        p = self._payments()
        np.testing.assert_allclose(p.utility, p.payment + p.valuation)

    def test_totals(self):
        p = self._payments()
        assert p.total_payment == pytest.approx(6.5)
        assert p.total_valuation_magnitude == pytest.approx(5.0)

    def test_arrays_read_only(self):
        p = self._payments()
        with pytest.raises(ValueError):
            p.bonus[0] = 0.0


class TestMechanismOutcome:
    def _outcome(self) -> MechanismOutcome:
        alloc = _allocation()
        payments = PaymentResult(
            compensation=np.array([8.0, 1.0]),
            bonus=np.array([1.0, 1.0]),
            valuation=np.array([-8.0, -1.0]),
        )
        return MechanismOutcome(
            allocation=alloc,
            payments=payments,
            execution_values=np.array([2.0, 1.0]),
        )

    def test_realised_latency_uses_execution_values(self):
        assert self._outcome().realised_latency == pytest.approx(9.0)

    def test_loads_shorthand(self):
        np.testing.assert_allclose(self._outcome().loads, [2.0, 1.0])

    def test_frugality_ratio(self):
        out = self._outcome()
        assert out.frugality_ratio == pytest.approx(11.0 / 9.0)

    def test_frugality_nan_when_valuation_zero(self):
        alloc = _allocation()
        payments = PaymentResult(
            compensation=np.zeros(2), bonus=np.zeros(2), valuation=np.zeros(2)
        )
        out = MechanismOutcome(
            allocation=alloc, payments=payments, execution_values=np.ones(2)
        )
        assert np.isnan(out.frugality_ratio)

    def test_true_values_stored_read_only(self):
        alloc = _allocation()
        payments = PaymentResult(
            compensation=np.zeros(2), bonus=np.zeros(2), valuation=np.zeros(2)
        )
        out = MechanismOutcome(
            allocation=alloc,
            payments=payments,
            execution_values=np.ones(2),
            true_values=np.array([1.0, 2.0]),
        )
        with pytest.raises(ValueError):
            out.true_values[0] = 3.0
