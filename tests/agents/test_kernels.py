"""Closed-form best-response kernels vs the brute-force search.

The contract under test (DESIGN.md §10): the kernel path is an exact
reformulation, not an approximation — same utilities to 1e-9 relative,
bit-identical grid selections with refinement off, same truthfulness
verdicts, and the same fixed points under iterated dynamics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import (
    BestResponseDynamics,
    BiddingGame,
    best_response,
    best_response_fast,
    sufficient_statistics,
    utility_kernel,
)
from repro.agents import kernels
from repro.allocation import IncrementalStrategicState
from repro.mechanism import (
    ArcherTardosMechanism,
    MM1TruthfulMechanism,
    VCGMechanism,
    VerificationMechanism,
)
from repro.system import paper_cluster
from repro.system.cluster import PAPER_ARRIVAL_RATE

RELATIVE_TOLERANCE = 1e-9

KERNEL_MODES = ("observed", "declared", "vcg", "archer_tardos")
TRUTHFUL_MODES = ("observed", "vcg", "archer_tardos")


def _mechanism_for_mode(mode: str):
    if mode in ("observed", "declared"):
        return VerificationMechanism(mode)
    if mode == "vcg":
        return VCGMechanism()
    return ArcherTardosMechanism()


def _run_utility(mechanism, bids, arrival_rate, executions, agent):
    outcome = mechanism.run(bids, arrival_rate, executions)
    return float(outcome.payments.utility[agent])


# ------------------------------------------------------- kernel exactness


class TestUtilityKernel:
    @pytest.mark.parametrize("mode", KERNEL_MODES)
    def test_matches_mechanism_run_on_random_profiles(self, mode, rng):
        mechanism = _mechanism_for_mode(mode)
        for _ in range(50):
            n = int(rng.integers(2, 8))
            bids = rng.uniform(0.2, 8.0, n)
            executions = bids * rng.uniform(1.0, 3.0, n)
            arrival_rate = float(rng.uniform(0.5, 30.0))
            agent = int(rng.integers(n))
            s_minus, q_minus = sufficient_statistics(
                bids, executions, agent=agent
            )
            expected = _run_utility(
                mechanism, bids, arrival_rate, executions, agent
            )
            actual = float(
                utility_kernel(
                    bids[agent],
                    executions[agent],
                    s_minus,
                    q_minus,
                    arrival_rate,
                    mode=mode,
                )
            )
            assert actual == pytest.approx(expected, rel=RELATIVE_TOLERANCE)

    def test_broadcasts_over_candidate_grids(self):
        bids = np.array([0.5, 1.0, 2.0])
        execs = np.array([[1.0], [2.0]])
        surface = utility_kernel(bids, execs, 0.8, 0.9, 5.0)
        assert surface.shape == (2, 3)
        for i, e in enumerate((1.0, 2.0)):
            for j, b in enumerate(bids):
                assert surface[i, j] == utility_kernel(b, e, 0.8, 0.9, 5.0)

    def test_rejects_unknown_mode_under_either_spelling(self):
        with pytest.raises(ValueError, match="compensation"):
            utility_kernel(1.0, 1.0, 0.5, 0.5, 3.0, compensation="bogus")
        with pytest.raises(ValueError, match="mode"):
            utility_kernel(1.0, 1.0, 0.5, 0.5, 3.0, mode="bogus")
        with pytest.raises(ValueError, match="not both"):
            utility_kernel(
                1.0, 1.0, 0.5, 0.5, 3.0, mode="observed", compensation="declared"
            )

    def test_compensation_alias_matches_mode(self):
        via_alias = utility_kernel(1.3, 1.3, 0.5, 0.5, 3.0, compensation="declared")
        via_mode = utility_kernel(1.3, 1.3, 0.5, 0.5, 3.0, mode="declared")
        assert float(via_alias) == float(via_mode)

    def test_supports_the_three_closed_form_mechanisms(self):
        assert kernels.supports(VerificationMechanism())
        assert kernels.supports(VerificationMechanism("declared"))
        assert kernels.supports(VCGMechanism())
        assert kernels.supports(ArcherTardosMechanism())
        assert not kernels.supports(MM1TruthfulMechanism())

    def test_kernel_mode_of_maps_each_mechanism(self):
        assert kernels.kernel_mode_of(VerificationMechanism()) == "observed"
        assert (
            kernels.kernel_mode_of(VerificationMechanism("declared")) == "declared"
        )
        assert kernels.kernel_mode_of(VCGMechanism()) == "vcg"
        assert kernels.kernel_mode_of(ArcherTardosMechanism()) == "archer_tardos"
        # The pre-1.8 name stays a working alias.
        assert kernels.compensation_mode_of(VCGMechanism()) == "vcg"
        with pytest.raises(TypeError, match="closed-form utility kernel"):
            kernels.kernel_mode_of(MM1TruthfulMechanism())


class TestSufficientStatistics:
    def test_matches_incremental_state(self, rng):
        bids = rng.uniform(0.5, 5.0, 6)
        executions = bids * rng.uniform(1.0, 2.0, 6)
        state = IncrementalStrategicState(bids, executions)
        for agent in range(6):
            expected = sufficient_statistics(bids, executions, agent=agent)
            assert state.statistics_excluding(agent) == pytest.approx(expected)

    def test_rank_one_updates_track_refreshed_sums(self, rng):
        state = IncrementalStrategicState(rng.uniform(0.5, 5.0, 5))
        for _ in range(200):
            state.update(int(rng.integers(5)), float(rng.uniform(0.3, 6.0)))
        s, q = state.total_inverse, state.total_weighted
        state.refresh()
        assert s == pytest.approx(state.total_inverse, rel=1e-12)
        assert q == pytest.approx(state.total_weighted, rel=1e-12)


# ------------------------------------------- fast vs brute-force property


@st.composite
def _search_cases(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    true_values = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0),
            min_size=n, max_size=n,
        )
    )
    return {
        "true_values": true_values,
        "arrival_rate": draw(st.floats(min_value=0.5, max_value=40.0)),
        "agent": draw(st.integers(min_value=0, max_value=n - 1)),
        "mode": draw(st.sampled_from(KERNEL_MODES)),
        "scan_points": draw(st.integers(min_value=8, max_value=24)),
        "exec_points": draw(st.integers(min_value=2, max_value=5)),
        "execution_cap_factor": draw(st.sampled_from([1.0, 2.0, 4.0])),
    }


class TestFastMatchesBruteForce:
    @given(case=_search_cases())
    @settings(max_examples=40, deadline=None)
    def test_identical_grid_selection_and_utilities(self, case):
        mechanism = _mechanism_for_mode(case.pop("mode"))
        common = dict(case, refine=False)
        true_values = np.array(common.pop("true_values"))
        arrival_rate = common.pop("arrival_rate")
        agent = common.pop("agent")
        brute = best_response(
            mechanism, true_values, arrival_rate, agent,
            method="bruteforce", **common,
        )
        fast = best_response(
            mechanism, true_values, arrival_rate, agent,
            method="vectorized", **common,
        )
        assert fast.bid == brute.bid
        assert fast.execution_value == brute.execution_value
        assert fast.utility == pytest.approx(
            brute.utility, rel=RELATIVE_TOLERANCE
        )
        assert fast.truthful_utility == pytest.approx(
            brute.truthful_utility, rel=RELATIVE_TOLERANCE
        )
        assert fast.is_truthful == brute.is_truthful

    def test_auto_selects_the_kernel_for_verification(self, mechanism):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        auto = best_response(mechanism, t, 4.0, 1, refine=False)
        fast = best_response_fast(mechanism, t, 4.0, 1, refine=False)
        assert (auto.bid, auto.execution_value) == (fast.bid, fast.execution_value)

    def test_fast_rejects_unsupported_mechanisms(self):
        with pytest.raises(TypeError, match="closed-form utility kernel"):
            best_response_fast(MM1TruthfulMechanism(), [1.0, 2.0], 3.0, 0)

    @pytest.mark.parametrize("mode", ["vcg", "archer_tardos"])
    def test_auto_selects_the_kernel_for_the_baselines(self, mode):
        # The baselines are kernel-supported since 1.8: method="auto"
        # must pick the identical selection the brute path computes.
        mechanism = _mechanism_for_mode(mode)
        t = np.array([1.0, 2.0, 5.0, 10.0])
        auto = best_response(mechanism, t, 4.0, 1, refine=False)
        brute = best_response(
            mechanism, t, 4.0, 1, method="bruteforce", refine=False
        )
        assert (auto.bid, auto.execution_value) == (brute.bid, brute.execution_value)
        assert auto.is_truthful and brute.is_truthful

    def test_respects_other_bids(self, declared_mechanism, small_true_values):
        others = np.array([2.0, 2.0, 5.0, 12.0])
        brute = best_response(
            declared_mechanism, small_true_values, 4.0, 0,
            other_bids=others, method="bruteforce", refine=False,
        )
        fast = best_response(
            declared_mechanism, small_true_values, 4.0, 0,
            other_bids=others, method="vectorized", refine=False,
        )
        assert (brute.bid, brute.execution_value) == (fast.bid, fast.execution_value)


# ------------------------------------------------------ dynamics parity


class TestBestResponseDynamics:
    @pytest.mark.parametrize("mode", KERNEL_MODES)
    def test_traces_match_bidding_game(self, mode):
        mechanism = _mechanism_for_mode(mode)
        t = np.array([1.0, 2.0, 5.0, 10.0])
        start = np.array([3.0, 2.0, 4.0, 15.0])
        slow = BiddingGame(mechanism, t, 4.0).run(start_bids=start, max_rounds=6)
        fast = BestResponseDynamics(mechanism, t, 4.0).run(
            start_bids=start, max_rounds=6
        )
        assert fast.rounds == slow.rounds
        assert fast.converged == slow.converged
        np.testing.assert_allclose(
            fast.final_bids, slow.final_bids, rtol=1e-6
        )

    def test_rejects_mechanisms_without_a_kernel(self):
        with pytest.raises(TypeError, match="closed-form utility kernel"):
            BestResponseDynamics(MM1TruthfulMechanism(), [1.0, 2.0], 3.0)

    @pytest.mark.parametrize("mode", TRUTHFUL_MODES)
    def test_truthful_profile_is_a_fixed_point(self, mode):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        trace = BestResponseDynamics(_mechanism_for_mode(mode), t, 4.0).run()
        assert trace.converged and trace.rounds == 1
        assert trace.max_drift_from(t) < 1e-6


@st.composite
def _truthful_profiles(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    return {
        "true_values": draw(
            st.lists(
                st.floats(min_value=0.1, max_value=10.0),
                min_size=n, max_size=n,
            )
        ),
        "arrival_rate": draw(st.floats(min_value=0.5, max_value=40.0)),
        "agent": draw(st.integers(min_value=0, max_value=n - 1)),
        "mode": draw(st.sampled_from(TRUTHFUL_MODES)),
    }


class TestTruthfulnessProperty:
    """Truth is a best response under every truthful payment rule.

    Theorem 3.1 (verification, observed), the Clarke pivot, and the
    Archer–Tardos characterisation all promise the same thing: no
    unilateral (bid, execution) deviation beats the truthful pair.  The
    sweep checks it up to grid resolution through both search paths.
    """

    @given(case=_truthful_profiles())
    @settings(max_examples=40, deadline=None)
    def test_truthful_bid_is_a_best_response(self, case):
        mechanism = _mechanism_for_mode(case["mode"])
        response = best_response(
            mechanism,
            np.array(case["true_values"]),
            case["arrival_rate"],
            case["agent"],
            refine=False,
        )
        assert response.is_truthful

    @pytest.mark.parametrize("mode", TRUTHFUL_MODES)
    def test_declared_variant_is_the_odd_one_out(self, mode):
        # Sanity anchor for the property above: the same search that
        # certifies the three truthful rules does flag the declared
        # variant's profitable overbid.
        t = np.array([1.0, 2.0, 5.0, 10.0])
        truthful = best_response(_mechanism_for_mode(mode), t, 4.0, 0)
        declared = best_response(VerificationMechanism("declared"), t, 4.0, 0)
        assert truthful.is_truthful
        assert not declared.is_truthful


class TestPaperSystemRegression:
    """Verdicts on the paper's 16-machine system must not move."""

    @pytest.mark.parametrize("method", ["bruteforce", "vectorized"])
    def test_observed_truthful_declared_not(self, method):
        cluster = paper_cluster()
        observed = BiddingGame(
            VerificationMechanism("observed"),
            cluster.true_values, PAPER_ARRIVAL_RATE, method=method,
        )
        declared = BiddingGame(
            VerificationMechanism("declared"),
            cluster.true_values, PAPER_ARRIVAL_RATE, method=method,
        )
        assert observed.truthful_is_equilibrium()
        assert not declared.truthful_is_equilibrium()

    def test_dynamics_agree_with_the_game_verdicts(self):
        cluster = paper_cluster()
        observed = BestResponseDynamics(
            VerificationMechanism("observed"),
            cluster.true_values, PAPER_ARRIVAL_RATE,
        )
        declared = BestResponseDynamics(
            VerificationMechanism("declared"),
            cluster.true_values, PAPER_ARRIVAL_RATE,
        )
        assert observed.truthful_is_equilibrium()
        assert not declared.truthful_is_equilibrium()


class TestSufficientStatisticsAll:
    """The vectorised aggregates behind the batched learning round."""

    def test_bit_identical_to_the_scalar_version(self):
        cluster = paper_cluster()
        bids = cluster.true_values * 1.3
        executions = cluster.true_values
        s_all, q_all = kernels.sufficient_statistics_all(bids, executions)
        for i in range(bids.size):
            s_i, q_i = sufficient_statistics(bids, executions, agent=i)
            assert s_all[i] == s_i
            assert q_all[i] == q_i

    def test_executions_default_to_bids_like_the_scalar_version(self):
        bids = np.array([1.0, 2.0, 4.0])
        assert np.array_equal(
            kernels.sufficient_statistics_all(bids)[1],
            kernels.sufficient_statistics_all(bids, bids)[1],
        )

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_bit_identity_on_random_profiles(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        bids = rng.uniform(0.5, 10.0, n)
        executions = rng.uniform(0.5, 10.0, n)
        s_all, q_all = kernels.sufficient_statistics_all(bids, executions)
        for i in range(n):
            s_i, q_i = sufficient_statistics(bids, executions, agent=i)
            assert s_all[i] == s_i
            assert q_all[i] == q_i

    def test_broadcast_rows_match_per_agent_kernel_calls(self):
        # The (n, K) learning broadcast must reproduce each agent's
        # 1-D kernel call bit-for-bit.
        cluster = paper_cluster()
        t = cluster.true_values
        grid = np.array([0.5, 1.0, 2.0])
        s_all, q_all = kernels.sufficient_statistics_all(t, t)
        broadcast = utility_kernel(
            grid[None, :] * t[:, None], t[:, None],
            s_all[:, None], q_all[:, None], PAPER_ARRIVAL_RATE,
            compensation="observed",
        )
        for i in range(t.size):
            row = utility_kernel(
                grid * t[i], np.full(grid.size, t[i]),
                s_all[i], q_all[i], PAPER_ARRIVAL_RATE,
                compensation="observed",
            )
            assert np.array_equal(broadcast[i], row)


class TestBatchedUnitAxis:
    """The (U, n) unit axis behind the fused campaign backend.

    Contract: stacking units never changes a float — every row of the
    batched aggregates, kernel surfaces, and argmax selections is
    bit-identical to the corresponding single-unit call.
    """

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_stacked_statistics_match_per_unit_rows(self, seed):
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(1, 12)), int(rng.integers(2, 10)))
        bids = rng.uniform(0.3, 9.0, shape)
        executions = bids * rng.uniform(1.0, 3.0, shape)
        s_units, q_units = kernels.sufficient_statistics_units(bids, executions)
        assert s_units.shape == q_units.shape == shape
        for k in range(shape[0]):
            s_row, q_row = kernels.sufficient_statistics_all(
                bids[k], executions[k]
            )
            assert np.array_equal(s_units[k], s_row)
            assert np.array_equal(q_units[k], q_row)

    def test_executions_default_to_bids(self):
        bids = np.array([[1.0, 2.0, 4.0], [0.5, 0.5, 3.0]])
        assert np.array_equal(
            kernels.sufficient_statistics_units(bids)[1],
            kernels.sufficient_statistics_units(bids, bids)[1],
        )

    def test_rejects_non_matrix_and_shape_mismatch(self):
        with pytest.raises(ValueError, match="matrix"):
            kernels.sufficient_statistics_units(np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="shape"):
            kernels.sufficient_statistics_units(
                np.ones((2, 3)), np.ones((2, 4))
            )

    @pytest.mark.parametrize("mode", KERNEL_MODES)
    def test_per_unit_arrival_rates_broadcast_bit_identically(self, mode):
        rng = np.random.default_rng(5)
        bids = rng.uniform(0.3, 9.0, (9, 6))
        executions = bids * rng.uniform(1.0, 2.0, bids.shape)
        rates = rng.uniform(1.0, 25.0, (9, 1))
        s_units, q_units = kernels.sufficient_statistics_units(
            bids, executions
        )
        stacked = utility_kernel(
            bids, executions, s_units, q_units, rates, mode=mode
        )
        for k in range(bids.shape[0]):
            row = utility_kernel(
                bids[k], executions[k], s_units[k], q_units[k],
                float(rates[k, 0]), mode=mode,
            )
            assert np.array_equal(stacked[k], row)

    def test_grid_argmax_units_shares_the_tie_break_contract(self):
        rng = np.random.default_rng(11)
        grids = rng.normal(size=(20, 5, 7))
        grids[4] = 0.0                      # all-tied grid: first entry wins
        grids[9, 2, :] = grids[9].max() + 1  # row of joint maxima
        rows, cols = kernels.grid_argmax_units(grids)
        for k in range(grids.shape[0]):
            assert (int(rows[k]), int(cols[k])) == kernels.grid_argmax(grids[k])

    def test_grid_argmax_units_rejects_non_stacked_input(self):
        with pytest.raises(ValueError, match="units, executions, bids"):
            kernels.grid_argmax_units(np.zeros((3, 4)))
