"""Unit tests for the iterated best-response bidding game."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import BiddingGame


class TestTruthfulMechanismGame:
    def test_truth_is_a_fixed_point(self, mechanism, small_true_values):
        game = BiddingGame(mechanism, small_true_values, 10.0)
        trace = game.run(max_rounds=3)
        assert trace.converged
        assert trace.max_drift_from(small_true_values) < 1e-4

    def test_converges_back_from_perturbed_start(self, mechanism, small_true_values):
        game = BiddingGame(mechanism, small_true_values, 10.0)
        start = small_true_values * np.array([2.0, 0.5, 1.5, 0.8])
        trace = game.run(start_bids=start, max_rounds=5)
        assert trace.converged
        assert trace.max_drift_from(small_true_values) < 1e-4

    def test_truthful_is_equilibrium(self, mechanism, small_true_values):
        game = BiddingGame(mechanism, small_true_values, 10.0)
        assert game.truthful_is_equilibrium()

    def test_history_has_start_row(self, mechanism, small_true_values):
        game = BiddingGame(mechanism, small_true_values, 10.0)
        trace = game.run(max_rounds=2)
        np.testing.assert_allclose(trace.bid_history[0], small_true_values)
        assert trace.bid_history.shape[0] == trace.rounds + 1


class TestDeclaredVariantGame:
    def test_truth_is_not_an_equilibrium(self, declared_mechanism, small_true_values):
        game = BiddingGame(declared_mechanism, small_true_values, 10.0)
        assert not game.truthful_is_equilibrium()

    def test_dynamics_drift_away_from_truth(self, declared_mechanism, small_true_values):
        game = BiddingGame(declared_mechanism, small_true_values, 10.0)
        trace = game.run(max_rounds=4)
        # Agents overbid, so the final profile sits strictly above truth.
        assert np.all(trace.final_bids > small_true_values)


class TestDishonestExecutionGame:
    def test_wider_deviation_space_still_keeps_truth_fixed(
        self, mechanism, small_true_values
    ):
        # honest_execution=False lets best responses also consider slow
        # execution; it is dominated, so the fixed point is unchanged.
        game = BiddingGame(
            mechanism, small_true_values[:3], 6.0, honest_execution=False
        )
        trace = game.run(max_rounds=2)
        assert trace.converged
        assert trace.max_drift_from(small_true_values[:3]) < 1e-4

    def test_equilibrium_check_with_execution_dimension(
        self, mechanism, small_true_values
    ):
        game = BiddingGame(
            mechanism, small_true_values[:3], 6.0, honest_execution=False
        )
        assert game.truthful_is_equilibrium()


class TestValidation:
    def test_start_bids_length_checked(self, mechanism, small_true_values):
        game = BiddingGame(mechanism, small_true_values, 10.0)
        with pytest.raises(ValueError):
            game.run(start_bids=np.array([1.0]))

    def test_nonpositive_start_rejected(self, mechanism, small_true_values):
        game = BiddingGame(mechanism, small_true_values, 10.0)
        with pytest.raises(ValueError):
            game.run(start_bids=np.array([1.0, -1.0, 1.0, 1.0]))
