"""Unit tests for the learning dynamics (Hedge bidders)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.learning import (
    MultiplicativeWeightsBidder,
    simulate_learning,
)
from repro.allocation import optimal_total_latency
from repro.mechanism import VerificationMechanism


class TestBidderMechanics:
    def test_weights_start_uniform(self, rng):
        bidder = MultiplicativeWeightsBidder(2.0, rng)
        np.testing.assert_allclose(bidder.weights, 1.0 / bidder.factors.size)

    def test_update_moves_mass_to_better_factors(self, rng):
        bidder = MultiplicativeWeightsBidder(
            2.0, rng, factors=np.array([0.5, 1.0, 2.0])
        )
        for _ in range(50):
            bidder.update(np.array([0.0, 10.0, 0.0]))
        assert bidder.modal_factor == 1.0
        assert bidder.truthful_mass > 0.99

    def test_weights_stay_normalised(self, rng):
        bidder = MultiplicativeWeightsBidder(2.0, rng)
        for _ in range(20):
            bidder.update(rng.uniform(0, 1, size=bidder.factors.size))
            assert bidder.weights.sum() == pytest.approx(1.0)

    def test_flat_utilities_leave_weights_unchanged(self, rng):
        bidder = MultiplicativeWeightsBidder(2.0, rng)
        before = bidder.weights.copy()
        bidder.update(np.full(bidder.factors.size, 3.0))
        np.testing.assert_allclose(bidder.weights, before)

    def test_sampled_bids_come_from_the_grid(self, rng):
        bidder = MultiplicativeWeightsBidder(2.0, rng)
        for _ in range(30):
            factor = bidder.sample_bid() / 2.0
            assert np.any(np.isclose(bidder.factors, factor))

    def test_grid_must_contain_truth(self, rng):
        with pytest.raises(ValueError, match="1.0"):
            MultiplicativeWeightsBidder(2.0, rng, factors=np.array([0.5, 2.0]))

    def test_utility_vector_length_checked(self, rng):
        bidder = MultiplicativeWeightsBidder(2.0, rng)
        with pytest.raises(ValueError):
            bidder.update(np.array([1.0]))


class TestLearningDynamics:
    """The A14 findings (see module docstring and EXPERIMENTS.md)."""

    @pytest.fixture(scope="class")
    def truthful_trace(self):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        return t, simulate_learning(
            VerificationMechanism(), t, 10.0,
            np.random.default_rng(0), rounds=500, learning_rate=0.3,
        )

    def test_learners_coordinate_on_a_common_scale(self, truthful_trace):
        _t, trace = truthful_trace
        assert np.ptp(trace.modal_factors) == pytest.approx(0.0)

    def test_realised_latency_converges_to_optimum(self, truthful_trace):
        t, trace = truthful_trace
        optimum = optimal_total_latency(t, 10.0)
        late = float(trace.realised_latency[-50:].mean())
        early = float(trace.realised_latency[:20].mean())
        assert late == pytest.approx(optimum, rel=0.01)
        assert late < early  # learning actually improved the system

    def test_declared_variant_learns_inefficient_overbids(self):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        trace = simulate_learning(
            VerificationMechanism("declared"), t, 10.0,
            np.random.default_rng(0), rounds=500, learning_rate=0.3,
        )
        assert trace.modal_factors.max() > 1.0  # overbidding
        optimum = optimal_total_latency(t, 10.0)
        late = float(trace.realised_latency[-50:].mean())
        assert late > optimum * 1.05  # permanent efficiency loss

    def test_trace_shapes(self, truthful_trace):
        _t, trace = truthful_trace
        assert trace.rounds == 500
        assert trace.truthful_mass.shape == (500, 4)
        assert trace.final_truthful_mass().shape == (4,)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_learning(
                VerificationMechanism(), np.array([1.0, 2.0]), 5.0, rng, rounds=0
            )


class TestBatchedKernelRound:
    """The (n, K) broadcast scores the same utilities as the slow path."""

    def test_vectorized_trace_matches_bruteforce(self):
        t = np.array([1.0, 2.0, 5.0])
        fast = simulate_learning(
            VerificationMechanism(), t, 6.0,
            np.random.default_rng(3), rounds=40,
        )
        slow = simulate_learning(
            VerificationMechanism(), t, 6.0,
            np.random.default_rng(3), rounds=40, method="bruteforce",
        )
        # Same rng stream, same utilities (to kernel tolerance), so the
        # Hedge weights — and everything derived — track each other.
        assert np.allclose(fast.truthful_mass, slow.truthful_mass, rtol=1e-9)
        assert np.allclose(
            fast.realised_latency, slow.realised_latency, rtol=1e-9
        )
        assert np.array_equal(fast.modal_factors, slow.modal_factors)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError, match="method"):
            simulate_learning(
                VerificationMechanism(), np.array([1.0, 2.0]), 5.0, rng,
                rounds=1, method="gpu",
            )
