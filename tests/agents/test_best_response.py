"""Unit tests for the numeric best-response optimiser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import best_response


class TestAgainstTruthfulMechanism:
    def test_best_response_is_truth(self, mechanism, small_true_values):
        for agent in range(small_true_values.size):
            br = best_response(mechanism, small_true_values, 10.0, agent)
            assert br.is_truthful
            assert br.bid == pytest.approx(small_true_values[agent])
            assert br.execution_value == pytest.approx(small_true_values[agent])

    def test_gain_is_zero(self, mechanism, small_true_values):
        br = best_response(mechanism, small_true_values, 10.0, 0)
        assert br.gain == pytest.approx(0.0, abs=1e-9)

    def test_truth_dominates_against_lying_opponents(self, mechanism, small_true_values):
        other_bids = small_true_values * np.array([1.0, 2.0, 0.5, 1.5])
        br = best_response(
            mechanism, small_true_values, 10.0, 0, other_bids=other_bids
        )
        assert br.is_truthful


class TestAgainstDeclaredVariant:
    def test_finds_the_profitable_overbid(self, declared_mechanism, small_true_values):
        br = best_response(declared_mechanism, small_true_values, 10.0, 0)
        assert not br.is_truthful
        assert br.bid > small_true_values[0]
        assert br.gain > 0.0

    def test_optimum_is_interior(self, declared_mechanism, small_true_values):
        # The found bid must be a stationary point of the utility.
        br = best_response(declared_mechanism, small_true_values, 10.0, 0)
        t = small_true_values
        h = 1e-5

        def utility(bid: float) -> float:
            bids = t.copy()
            bids[0] = bid
            return float(
                declared_mechanism.run(bids, 10.0, t).payments.utility[0]
            )

        slope = (utility(br.bid + h) - utility(br.bid - h)) / (2 * h)
        assert abs(slope) < 1e-2

    def test_never_prefers_slow_execution(self, declared_mechanism, small_true_values):
        # Even in the broken variant, slow execution only raises cost.
        br = best_response(declared_mechanism, small_true_values, 10.0, 0)
        assert br.execution_value == pytest.approx(small_true_values[0])


class TestValidation:
    def test_agent_out_of_range(self, mechanism, small_true_values):
        with pytest.raises(IndexError):
            best_response(mechanism, small_true_values, 10.0, 7)

    def test_execution_cap_below_one_rejected(self, mechanism, small_true_values):
        with pytest.raises(ValueError):
            best_response(
                mechanism, small_true_values, 10.0, 0, execution_cap_factor=0.5
            )

    def test_other_bids_length_checked(self, mechanism, small_true_values):
        with pytest.raises(ValueError):
            best_response(
                mechanism,
                small_true_values,
                10.0,
                0,
                other_bids=np.array([1.0, 2.0]),
            )
