"""Unit tests for the fixed agent behaviours."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import (
    ManipulativeAgent,
    RandomLiar,
    ScaledBidder,
    SlowExecutor,
    TruthfulAgent,
    profile_bids,
    profile_execution_values,
)


class TestTruthfulAgent:
    def test_bids_truth(self):
        agent = TruthfulAgent(3.0)
        assert agent.bid() == 3.0
        assert agent.execution_value() == 3.0

    def test_rejects_nonpositive_true_value(self):
        with pytest.raises(ValueError):
            TruthfulAgent(0.0)


class TestManipulativeAgent:
    def test_factors_applied(self):
        agent = ManipulativeAgent(2.0, bid_factor=3.0, execution_factor=1.5)
        assert agent.bid() == 6.0
        assert agent.execution_value() == 3.0

    def test_execution_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ManipulativeAgent(2.0, bid_factor=1.0, execution_factor=0.5)

    def test_nonpositive_bid_factor_rejected(self):
        with pytest.raises(ValueError):
            ManipulativeAgent(2.0, bid_factor=0.0)

    def test_repr_shows_factors(self):
        agent = ManipulativeAgent(2.0, bid_factor=3.0)
        assert "bid_factor=3" in repr(agent)


class TestConvenienceSubclasses:
    def test_scaled_bidder_executes_at_capacity(self):
        agent = ScaledBidder(4.0, bid_factor=0.5)
        assert agent.bid() == 2.0
        assert agent.execution_value() == 4.0

    def test_slow_executor_bids_truth(self):
        agent = SlowExecutor(4.0, execution_factor=2.0)
        assert agent.bid() == 4.0
        assert agent.execution_value() == 8.0


class TestRandomLiar:
    def test_strategy_is_fixed_after_construction(self, rng):
        agent = RandomLiar(2.0, rng)
        assert agent.bid() == agent.bid()
        assert agent.execution_value() == agent.execution_value()

    def test_execution_respects_capacity(self, rng):
        for _ in range(50):
            agent = RandomLiar(2.0, rng)
            assert agent.execution_value() >= 2.0

    def test_bid_within_range(self, rng):
        for _ in range(50):
            agent = RandomLiar(2.0, rng, bid_factor_range=(0.5, 2.0))
            assert 1.0 <= agent.bid() <= 4.0

    def test_invalid_ranges_rejected(self, rng):
        with pytest.raises(ValueError):
            RandomLiar(2.0, rng, bid_factor_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            RandomLiar(2.0, rng, execution_factor_range=(0.5, 2.0))

    def test_reproducible_with_same_seed(self):
        a = RandomLiar(2.0, np.random.default_rng(7))
        b = RandomLiar(2.0, np.random.default_rng(7))
        assert a.bid() == b.bid()


class TestProfiles:
    def test_profile_vectors(self):
        agents = [TruthfulAgent(1.0), ScaledBidder(2.0, 3.0)]
        np.testing.assert_allclose(profile_bids(agents), [1.0, 6.0])
        np.testing.assert_allclose(profile_execution_values(agents), [1.0, 2.0])

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            profile_bids([])
        with pytest.raises(ValueError):
            profile_execution_values([])
