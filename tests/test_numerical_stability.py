"""Numerical stability at extreme scales and degenerate configurations.

The closed forms involve sums of reciprocals and differences of large
quantities; these tests pin behaviour at the edges: tiny/huge slopes,
extreme heterogeneity, very large systems, and near-degenerate
leave-one-out denominators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import (
    optimal_latency_excluding_each,
    optimal_total_latency,
    pr_loads,
)
from repro.mechanism import VerificationMechanism


class TestExtremeMagnitudes:
    @pytest.mark.parametrize("scale", [1e-9, 1e-3, 1e3, 1e9])
    def test_pr_allocation_scale_invariant(self, scale):
        base = np.array([1.0, 2.0, 5.0])
        np.testing.assert_allclose(
            pr_loads(base * scale, 7.0), pr_loads(base, 7.0), rtol=1e-10
        )

    @pytest.mark.parametrize("rate", [1e-9, 1e9])
    def test_latency_scales_as_rate_squared(self, rate):
        t = np.array([1.0, 2.0])
        expected = rate**2 / 1.5
        assert optimal_total_latency(t, rate) == pytest.approx(expected, rel=1e-12)

    def test_mechanism_survives_mixed_magnitudes(self):
        t = np.array([1e-6, 1.0, 1e6])
        outcome = VerificationMechanism().run(t, 10.0, t)
        assert np.all(np.isfinite(outcome.payments.payment))
        assert np.all(outcome.payments.utility >= -1e-6)
        assert outcome.loads.sum() == pytest.approx(10.0)


class TestExtremeHeterogeneity:
    def test_dominant_machine_takes_almost_everything(self):
        t = np.array([1e-8, 1.0, 1.0])
        loads = pr_loads(t, 5.0)
        assert loads[0] / 5.0 > 0.9999
        assert loads[1] > 0.0  # but nobody is starved to exactly zero

    def test_dominant_machine_bonus_is_huge_but_finite(self):
        t = np.array([1e-8, 1.0, 1.0])
        excluded = optimal_latency_excluding_each(t, 5.0)
        # Removing the dominant machine catastrophically raises L.
        assert excluded[0] > 1e3 * excluded[1]
        assert np.all(np.isfinite(excluded))

    def test_frugality_diverges_with_dominance(self):
        # Known structural fact: the truthful frugality ratio is
        # unbounded when one machine dominates (its information rent is
        # the whole system).
        ratios = []
        for eps in (1e-1, 1e-2, 1e-3):
            t = np.array([eps, 1.0, 1.0])
            outcome = VerificationMechanism().run(t, 5.0, t)
            ratios.append(outcome.frugality_ratio)
        assert ratios[0] < ratios[1] < ratios[2]


class TestLargeSystems:
    def test_ten_thousand_machines(self):
        rng = np.random.default_rng(0)
        t = rng.uniform(1.0, 10.0, size=10_000)
        outcome = VerificationMechanism().run(t, 1000.0, t)
        assert outcome.loads.sum() == pytest.approx(1000.0)
        assert np.all(outcome.payments.utility >= -1e-9)
        # The truthful frugality ratio converges to exactly 2 in large
        # systems: ratio = 1 + sum_i s_i/(S - s_i) -> 1 + sum s_i/S = 2.
        assert outcome.frugality_ratio == pytest.approx(2.0, abs=1e-2)

    def test_near_identical_machines_split_evenly(self):
        t = np.full(1000, 2.0)
        t[0] = 2.0 * (1 + 1e-12)
        loads = pr_loads(t, 100.0)
        assert np.ptp(loads) / loads.mean() < 1e-9


class TestTwoMachineMinimum:
    def test_smallest_system_with_leave_one_out(self):
        t = np.array([1.0, 3.0])
        outcome = VerificationMechanism().run(t, 4.0, t)
        # L_{-i} on two machines is a single-machine system: R^2 t_other.
        np.testing.assert_allclose(
            outcome.payments.bonus,
            np.array([16 * 3.0, 16 * 1.0]) - outcome.realised_latency,
        )

    def test_utilities_still_nonnegative(self):
        t = np.array([1.0, 1000.0])
        outcome = VerificationMechanism().run(t, 4.0, t)
        assert np.all(outcome.payments.utility >= 0.0)
