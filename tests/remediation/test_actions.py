"""Unit tests for stages 2 and 4b: propose and apply (with undo)."""

from __future__ import annotations

import pytest

from repro.remediation import (
    ACTION_KINDS,
    ActionApplier,
    ActionProposer,
    RemediationAction,
)
from repro.remediation.incidents import Incident
from repro.resilience.quarantine import CircuitState

from tests.remediation.conftest import build_supervisor


def _slowdown(factor: float, machine: str = "m", round_index: int = 3) -> Incident:
    return Incident(
        kind="slowdown",
        round_index=round_index,
        machine=machine,
        evidence={"slowdown_factor": factor},
    )


class TestRemediationAction:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            RemediationAction(kind="reboot")

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError, match="factor"):
            RemediationAction(kind="reweight", machine="m", factor=0.0)

    def test_action_id_includes_round_kind_machine(self):
        action = RemediationAction(kind="readmit", machine="m2", round_index=5)
        assert action.action_id == "5:readmit:m2"
        round_level = RemediationAction(kind="void_round", round_index=5)
        assert round_level.action_id == "5:void_round:*"

    def test_dict_round_trip(self):
        action = RemediationAction(
            kind="reweight",
            machine="m1",
            factor=2.5,
            reason="why",
            incident_kind="slowdown",
            round_index=9,
        )
        assert RemediationAction.from_dict(action.to_dict()) == action


class TestProposerPlaybook:
    def test_mild_slowdown_only_requarantines(self, supervisor):
        actions = ActionProposer().propose([_slowdown(1.1)], supervisor)
        assert [a.kind for a in actions] == ["requarantine"]

    def test_moderate_slowdown_adds_reweight(self, supervisor):
        actions = ActionProposer().propose([_slowdown(1.5)], supervisor)
        assert [a.kind for a in actions] == ["requarantine", "reweight"]
        reweight = actions[1]
        assert reweight.factor == pytest.approx(1.5)

    def test_severe_slowdown_also_sharpens_detector(self, supervisor):
        actions = ActionProposer().propose([_slowdown(3.0)], supervisor)
        assert [a.kind for a in actions] == [
            "requarantine",
            "reweight",
            "sharpen_detector",
        ]

    def test_unverified_report_requarantines(self, supervisor):
        incident = Incident(kind="unverified", round_index=2, machine="m1")
        actions = ActionProposer().propose([incident], supervisor)
        assert [a.kind for a in actions] == ["requarantine"]
        assert actions[0].machine == "m1"

    def test_trip_during_loss_spike_is_forgiven(self, supervisor):
        trip = Incident(
            kind="circuit_trip",
            round_index=4,
            machine="m0",
            evidence={"reason": "missed_bid"},
        )
        loss = Incident(kind="message_loss", round_index=4)
        actions = ActionProposer().propose([trip, loss], supervisor)
        assert [a.kind for a in actions] == ["reset_circuit"]

    def test_organic_trip_without_loss_is_left_alone(self, supervisor):
        trip = Incident(
            kind="circuit_trip",
            round_index=4,
            machine="m0",
            evidence={"reason": "slowdown_alert"},
        )
        assert ActionProposer().propose([trip], supervisor) == []

    def test_invariant_voids_the_round(self, supervisor):
        incident = Incident(kind="invariant", round_index=6, severity=1.0)
        actions = ActionProposer().propose([incident], supervisor)
        assert [a.kind for a in actions] == ["void_round"]

    def test_opportunistic_readmit_needs_reputation_and_cooldown(self):
        supervisor = build_supervisor()
        name = supervisor.machine_names[0]
        quarantine = supervisor.quarantine
        quarantine.force_open(name, "test")
        health = quarantine.health_of(name)
        health.cooldown_remaining = 4
        health.reputation = 0.9  # clears the 0.6 bar
        trigger = Incident(kind="message_loss", round_index=5)
        actions = ActionProposer().propose([trigger], supervisor)
        assert [a.kind for a in actions] == ["readmit"]
        # Drop the reputation below the bar: no readmit any more.
        health.reputation = 0.2
        assert ActionProposer().propose([trigger], supervisor) == []

    def test_duplicate_incidents_propose_once(self, supervisor):
        actions = ActionProposer().propose(
            [_slowdown(1.1), _slowdown(1.1)], supervisor
        )
        assert len(actions) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"reweight_min_factor": 1.0},
            {"severe_slowdown": 0.9},
            {"readmit_min_cooldown": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ActionProposer(**kwargs)


class TestApplierEffectsAndUndo:
    def _action(self, kind, supervisor, **kwargs):
        machine = kwargs.pop(
            "machine",
            None if kind in ("void_round", "sharpen_detector")
            else supervisor.machine_names[0],
        )
        return RemediationAction(kind=kind, machine=machine, **kwargs)

    def test_requarantine_opens_and_rolls_back(self, supervisor):
        applier = ActionApplier()
        name = supervisor.machine_names[0]
        undo = applier.apply(supervisor, self._action("requarantine", supervisor))
        assert supervisor.quarantine.state_of(name) is CircuitState.OPEN
        applier.rollback(supervisor, undo)
        assert supervisor.quarantine.state_of(name) is CircuitState.CLOSED
        assert supervisor.quarantine.health_of(name).times_opened == 0

    def test_readmit_moves_open_machine_to_probe(self, supervisor):
        applier = ActionApplier()
        name = supervisor.machine_names[0]
        supervisor.quarantine.force_open(name, "test")
        undo = applier.apply(supervisor, self._action("readmit", supervisor))
        assert supervisor.quarantine.state_of(name) is CircuitState.HALF_OPEN
        applier.rollback(supervisor, undo)
        assert supervisor.quarantine.state_of(name) is CircuitState.OPEN

    def test_reweight_overrides_and_restores_bid(self, supervisor):
        applier = ActionApplier()
        name = supervisor.machine_names[0]
        declared = supervisor.agents[name].bid()
        undo = applier.apply(
            supervisor, self._action("reweight", supervisor, factor=2.0)
        )
        assert supervisor.bid_overrides[name] == pytest.approx(2.0 * declared)
        applier.rollback(supervisor, undo)
        assert name not in supervisor.bid_overrides

    def test_sharpen_respects_the_floor(self, supervisor):
        applier = ActionApplier()
        before = supervisor.detector_threshold
        undo = applier.apply(
            supervisor, self._action("sharpen_detector", supervisor, factor=0.75)
        )
        assert supervisor.detector_threshold == pytest.approx(0.75 * before)
        applier.rollback(supervisor, undo)
        assert supervisor.detector_threshold == before
        # A pathological factor cannot push the threshold below 2.
        applier.apply(
            supervisor,
            self._action("sharpen_detector", supervisor, factor=1e-6),
        )
        assert supervisor.detector_threshold >= 2.0

    def test_void_round_skips_exactly_one_round(self, supervisor):
        applier = ActionApplier()
        applier.apply(supervisor, self._action("void_round", supervisor))
        assert supervisor.skip_rounds == 1
        voided = supervisor.run_round()
        assert voided.voided
        clean = supervisor.run_round()
        assert not clean.voided

    def test_apply_counts_track_at_most_once_evidence(self, supervisor):
        applier = ActionApplier()
        action = self._action("requarantine", supervisor)
        applier.apply(supervisor, action)
        applier.apply(supervisor, action)
        assert applier.apply_counts[action.action_id] == 2


class TestPostApplyCheck:
    def test_clean_supervisor_has_no_problems(self, supervisor):
        assert ActionApplier().post_apply_check(supervisor) == []

    def test_flags_a_fleet_reduced_below_two(self):
        supervisor = build_supervisor(n_machines=2)
        supervisor.quarantine.force_open(supervisor.machine_names[0], "test")
        problems = ActionApplier().post_apply_check(supervisor)
        assert any("remain admissible" in p for p in problems)

    def test_flags_override_below_declared(self, supervisor):
        name = supervisor.machine_names[0]
        supervisor.bid_overrides[name] = 0.5 * supervisor.agents[name].bid()
        problems = ActionApplier().post_apply_check(supervisor)
        assert any("below its" in p for p in problems)

    def test_action_kinds_are_ordered_least_to_most_disruptive(self):
        assert ACTION_KINDS[0] == "readmit"
        assert ACTION_KINDS[-1] == "void_round"
