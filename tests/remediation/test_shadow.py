"""Unit tests for stage 3: dry-run verification in a shadow world."""

from __future__ import annotations

import pytest

from repro.observability import instrumentation
from repro.observability.instrumentation import Instrumentation
from repro.remediation import RemediationAction, ShadowVerifier
from repro.resilience.quarantine import CircuitState

from tests.remediation.conftest import build_supervisor


def _requarantine(supervisor, machine=0, round_index=None):
    return RemediationAction(
        kind="requarantine",
        machine=supervisor.machine_names[machine],
        reason="test",
        round_index=round_index if round_index is not None else 0,
    )


class TestVerdicts:
    def test_requarantining_the_slow_machine_is_accepted(self, alert_round):
        supervisor, result = alert_round
        action = _requarantine(supervisor, round_index=result.index)
        (verdict,) = ShadowVerifier().verify(supervisor, result, [action])
        assert verdict.accepted
        # The evidence round really was degraded: the no-action shadow
        # carries a verification gap well above 1 ...
        assert verdict.baseline_excess > 1.2
        # ... and removing the liar shrinks it.  (It does not fully
        # close: the default 2-round horizon sees the quarantined
        # machine return as a still-slow probe in shadow round 2.)
        assert verdict.predicted_excess < verdict.baseline_excess

    def test_one_round_horizon_sees_the_gap_fully_close(self, alert_round):
        supervisor, result = alert_round
        action = _requarantine(supervisor, round_index=result.index)
        (verdict,) = ShadowVerifier(rounds=1).verify(
            supervisor, result, [action]
        )
        assert verdict.accepted
        assert verdict.predicted_excess == pytest.approx(1.0, abs=0.01)

    def test_healthy_round_has_unit_baseline(self, supervisor):
        result = supervisor.run_round()
        action = _requarantine(supervisor, round_index=result.index)
        (verdict,) = ShadowVerifier().verify(supervisor, result, [action])
        assert verdict.baseline_excess == pytest.approx(1.0, abs=0.05)

    def test_action_that_starves_the_fleet_is_rejected(self):
        # Requarantining one of two machines voids the next shadow
        # round outright; a 1-round horizon therefore predicts an
        # infinite gap and rejects.  (The longer default horizon sees
        # the probe return and accepts — live application would still
        # be stopped by the post-apply check.)
        supervisor = build_supervisor(n_machines=2)
        result = supervisor.run_round()
        action = _requarantine(supervisor, round_index=result.index)
        (verdict,) = ShadowVerifier(rounds=1).verify(
            supervisor, result, [action]
        )
        assert not verdict.accepted
        assert verdict.predicted_excess == float("inf")
        # The rejection never reached the live supervisor.
        assert (
            supervisor.quarantine.state_of(supervisor.machine_names[0])
            is CircuitState.CLOSED
        )

    def test_void_round_is_judged_on_invariants_alone(self, alert_round):
        supervisor, result = alert_round
        action = RemediationAction(
            kind="void_round", reason="test", round_index=result.index
        )
        (verdict,) = ShadowVerifier().verify(supervisor, result, [action])
        assert verdict.accepted
        assert "invariant" in verdict.reason

    def test_verdicts_follow_proposal_order(self, alert_round):
        supervisor, result = alert_round
        actions = [
            _requarantine(supervisor, round_index=result.index),
            RemediationAction(
                kind="sharpen_detector", factor=0.75, round_index=result.index
            ),
        ]
        verdicts = ShadowVerifier().verify(supervisor, result, actions)
        assert [v.action_id for v in verdicts] == [a.action_id for a in actions]

    def test_no_actions_no_dry_runs(self, supervisor):
        result = supervisor.run_round()
        assert ShadowVerifier().verify(supervisor, result, []) == []


class TestIsolation:
    def test_dry_run_leaves_live_state_untouched(self, alert_round):
        supervisor, result = alert_round
        states_before = {
            n: supervisor.quarantine.state_of(n)
            for n in supervisor.machine_names
        }
        overrides_before = dict(supervisor.bid_overrides)
        threshold_before = supervisor.detector_threshold
        skip_before = supervisor.skip_rounds

        actions = [
            _requarantine(supervisor, round_index=result.index),
            RemediationAction(
                kind="reweight",
                machine=supervisor.machine_names[0],
                factor=3.0,
                round_index=result.index,
            ),
            RemediationAction(kind="void_round", round_index=result.index),
        ]
        ShadowVerifier().verify(supervisor, result, actions)

        assert {
            n: supervisor.quarantine.state_of(n)
            for n in supervisor.machine_names
        } == states_before
        assert supervisor.bid_overrides == overrides_before
        assert supervisor.detector_threshold == threshold_before
        assert supervisor.skip_rounds == skip_before

    def test_dry_run_emits_no_metrics(self, alert_round):
        supervisor, result = alert_round
        action = _requarantine(supervisor, round_index=result.index)
        inst = Instrumentation()
        previous = instrumentation.enable(inst)
        try:
            before = inst.metrics.snapshot()
            ShadowVerifier().verify(supervisor, result, [action])
            assert inst.metrics.snapshot() == before
        finally:
            instrumentation.disable()
            if previous is not None:
                instrumentation.enable(previous)

    def test_verification_is_deterministic(self, alert_round):
        supervisor, result = alert_round
        action = _requarantine(supervisor, round_index=result.index)
        first = ShadowVerifier(seed=42).verify(supervisor, result, [action])
        second = ShadowVerifier(seed=42).verify(supervisor, result, [action])
        assert first == second


class TestParameters:
    @pytest.mark.parametrize(
        "kwargs", [{"rounds": 0}, {"latency_tolerance": -0.1}]
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ShadowVerifier(**kwargs)
