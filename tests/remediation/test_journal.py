"""Unit tests for stage 4: WAL journal, risk order, at-most-once apply."""

from __future__ import annotations

import pytest

from repro.remediation import (
    ActionApplier,
    ActionJournal,
    JournalRecord,
    RemediationAction,
    RemediationScheduler,
    RiskScorer,
    SchedulerCrash,
    ShadowVerdict,
)
from repro.remediation.journal import SCHEMA_VERSION, TERMINAL_STATUSES
from repro.resilience.quarantine import CircuitState

from tests.remediation.conftest import build_supervisor


def _verdict(action, predicted=1.0, baseline=1.5):
    return ShadowVerdict(
        action_id=action.action_id,
        accepted=True,
        reason="test verdict",
        predicted_excess=predicted,
        baseline_excess=baseline,
    )


def _requarantine(name, round_index=0):
    return RemediationAction(
        kind="requarantine", machine=name, reason="test", round_index=round_index
    )


class TestJournalRecord:
    def test_rejects_unknown_status(self):
        with pytest.raises(ValueError, match="status"):
            JournalRecord(sequence=0, action_id="x", status="maybe")

    def test_dict_round_trip(self):
        record = JournalRecord(
            sequence=3,
            action_id="1:readmit:m",
            status="verified",
            action={"kind": "readmit"},
            risk=0.2,
            detail="why",
        )
        assert JournalRecord.from_dict(record.to_dict()) == record


class TestActionJournal:
    def test_appends_are_sequenced_and_deserialisable(self):
        journal = ActionJournal()
        action = _requarantine("m")
        journal.append(action, "proposed")
        journal.append(action, "verified", risk=0.6)
        records = journal.records()
        assert [r.sequence for r in records] == [0, 1]
        assert [r.status for r in records] == ["proposed", "verified"]
        assert records[1].risk == 0.6
        # The journal stores serialised lines: what comes back is a
        # rebuilt record, not the object that went in.
        assert records[0].action == action.to_dict()

    def test_last_status_tracks_the_latest_transition(self):
        journal = ActionJournal()
        a = _requarantine("a")
        b = _requarantine("b")
        journal.append(a, "proposed")
        journal.append(b, "proposed")
        journal.append(a, "verified")
        journal.append(a, "applying")
        assert journal.last_status() == {
            a.action_id: "applying",
            b.action_id: "proposed",
        }

    def test_json_round_trip(self):
        journal = ActionJournal()
        action = _requarantine("m")
        journal.append(action, "proposed", detail="hello")
        journal.append(action, "rejected", detail="no")
        restored = ActionJournal.from_json(journal.to_json())
        assert restored.records() == journal.records()
        # The restored journal keeps appending with fresh sequences.
        restored.append(action, "abandoned")
        assert restored.records()[-1].sequence == 2

    def test_from_json_rejects_wrong_schema_version(self):
        journal = ActionJournal()
        payload = journal.to_json().replace(
            f'"schema_version": {SCHEMA_VERSION}', '"schema_version": 99'
        )
        with pytest.raises(ValueError, match="schema version"):
            ActionJournal.from_json(payload)


class TestRiskScorer:
    def test_base_order_tracks_invasiveness(self):
        scorer = RiskScorer()
        kinds = ["readmit", "reset_circuit", "sharpen_detector", "reweight",
                 "requarantine", "void_round"]
        weights = [scorer.BASE_WEIGHTS[k] for k in kinds]
        assert weights == sorted(weights)

    def test_gap_improvement_lowers_risk(self):
        scorer = RiskScorer()
        action = _requarantine("m")
        improving = _verdict(action, predicted=1.0, baseline=1.6)
        neutral = _verdict(action, predicted=1.6, baseline=1.6)
        assert scorer.score(action, improving) < scorer.score(action, neutral)

    def test_infinite_gaps_fall_back_to_base_weight(self):
        scorer = RiskScorer()
        action = _requarantine("m")
        verdict = _verdict(action, predicted=float("inf"))
        assert scorer.score(action, verdict) == scorer.BASE_WEIGHTS["requarantine"]


class TestSchedulerDrain:
    def test_drains_in_ascending_risk_order(self, supervisor):
        scheduler = RemediationScheduler()
        risky = _requarantine(supervisor.machine_names[0])
        safe = RemediationAction(
            kind="sharpen_detector", factor=0.75, round_index=0
        )
        scheduler.submit(risky, _verdict(risky, predicted=1.5, baseline=1.5))
        scheduler.submit(safe, _verdict(safe, predicted=1.5, baseline=1.5))
        assert [a.kind for a in scheduler.pending] == [
            "sharpen_detector",
            "requarantine",
        ]
        applied = scheduler.drain(supervisor)
        assert [a.kind for a in applied] == ["sharpen_detector", "requarantine"]
        assert scheduler.pending == []
        statuses = scheduler.journal.last_status()
        assert statuses[risky.action_id] == "applied"
        assert statuses[safe.action_id] == "applied"

    def test_rejected_actions_never_become_pending(self, supervisor):
        scheduler = RemediationScheduler()
        action = _requarantine(supervisor.machine_names[0])
        verdict = ShadowVerdict(
            action_id=action.action_id,
            accepted=False,
            reason="worse gap",
            predicted_excess=2.0,
            baseline_excess=1.0,
        )
        scheduler.reject(action, verdict)
        assert scheduler.pending == []
        assert scheduler.drain(supervisor) == []
        assert scheduler.journal.last_status()[action.action_id] == "rejected"
        assert scheduler.applier.apply_counts == {}

    def test_failed_post_apply_check_rolls_back(self):
        # Quarantining one machine of a 2-fleet passes application but
        # fails the post-apply check; the mutation must be undone and
        # journaled as rolled_back.
        supervisor = build_supervisor(n_machines=2)
        name = supervisor.machine_names[0]
        scheduler = RemediationScheduler()
        action = _requarantine(name)
        scheduler.submit(action, _verdict(action))
        applied = scheduler.drain(supervisor)
        assert applied == []
        assert supervisor.quarantine.state_of(name) is CircuitState.CLOSED
        assert scheduler.journal.last_status()[action.action_id] == "rolled_back"

    def test_terminal_statuses_cover_every_exit(self):
        assert set(TERMINAL_STATUSES) == {
            "rejected", "applied", "rolled_back", "abandoned",
        }


class TestCrashRecovery:
    """The acceptance criterion: kill the scheduler between apply and
    ack, resume from the journal, and observe at-most-once application."""

    def _two_pending(self, supervisor):
        scheduler = RemediationScheduler(fail_after_applies=1)
        low = RemediationAction(
            kind="sharpen_detector", factor=0.75, round_index=0
        )
        high = _requarantine(supervisor.machine_names[0])
        scheduler.submit(low, _verdict(low, predicted=1.5, baseline=1.5))
        scheduler.submit(high, _verdict(high, predicted=1.5, baseline=1.5))
        return scheduler, low, high

    def test_crash_leaves_unacked_applying_record(self, supervisor):
        scheduler, low, high = self._two_pending(supervisor)
        with pytest.raises(SchedulerCrash):
            scheduler.drain(supervisor)
        # The mutation landed (threshold sharpened) but was never acked.
        assert supervisor.detector_threshold < 15.0
        assert scheduler.journal.last_status()[low.action_id] == "applying"
        assert scheduler.journal.last_status()[high.action_id] == "verified"

    def test_resume_abandons_the_crash_window_action(self, supervisor):
        scheduler, low, high = self._two_pending(supervisor)
        with pytest.raises(SchedulerCrash):
            scheduler.drain(supervisor)
        first_applies = dict(scheduler.applier.apply_counts)
        assert first_applies == {low.action_id: 1}

        # "Restart the process": the journal survives serialisation,
        # everything in memory is lost.
        journal = ActionJournal.from_json(scheduler.journal.to_json())
        fresh_applier = ActionApplier()
        resumed = RemediationScheduler.resume(journal, applier=fresh_applier)

        # The crash-window action is journaled abandoned, not re-run.
        assert journal.last_status()[low.action_id] == "abandoned"
        assert low.action_id not in [a.action_id for a in resumed.pending]

        # The still-verified action survives with its journaled risk
        # and drains exactly once.
        assert [a.action_id for a in resumed.pending] == [high.action_id]
        applied = resumed.drain(supervisor)
        assert [a.action_id for a in applied] == [high.action_id]
        assert journal.last_status()[high.action_id] == "applied"

        # At-most-once, across both process lifetimes: the abandoned
        # action was applied exactly once (pre-crash), the resumed one
        # exactly once (post-crash).
        assert fresh_applier.apply_counts == {high.action_id: 1}
        total = {}
        for counts in (first_applies, fresh_applier.apply_counts):
            for action_id, count in counts.items():
                total[action_id] = total.get(action_id, 0) + count
        assert total == {low.action_id: 1, high.action_id: 1}

    def test_resume_of_a_clean_journal_has_nothing_to_do(self, supervisor):
        scheduler = RemediationScheduler()
        action = _requarantine(supervisor.machine_names[0])
        scheduler.submit(action, _verdict(action))
        scheduler.drain(supervisor)
        resumed = RemediationScheduler.resume(
            ActionJournal.from_json(scheduler.journal.to_json())
        )
        assert resumed.pending == []
        assert resumed.drain(supervisor) == []
