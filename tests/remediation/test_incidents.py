"""Unit tests for stage 1: signals → typed incidents."""

from __future__ import annotations

import pytest

from repro.remediation import INCIDENT_KINDS, Incident, IncidentDetector
from repro.resilience import MachineFault, RoundFaults
from repro.resilience.invariants import InvariantViolation

from tests.remediation.conftest import build_supervisor, make_result, slow_round


class TestIncidentRecord:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Incident(kind="gremlins", round_index=0)

    @pytest.mark.parametrize("severity", [-0.1, 1.1])
    def test_rejects_out_of_range_severity(self, severity):
        with pytest.raises(ValueError, match="severity"):
            Incident(kind="slowdown", round_index=0, severity=severity)

    def test_str_names_round_and_machine(self):
        incident = Incident(kind="slowdown", round_index=7, machine="m3")
        assert "round 7" in str(incident)
        assert "m3" in str(incident)

    def test_taxonomy_is_fixed(self):
        assert INCIDENT_KINDS == (
            "message_loss",
            "unverified",
            "slowdown",
            "circuit_trip",
            "invariant",
        )


class TestSlowdownDetection:
    def test_cusum_alert_becomes_slowdown_incident(self, alert_round):
        supervisor, result = alert_round
        incidents = IncidentDetector().scan(result, supervisor.quarantine)
        slowdowns = [i for i in incidents if i.kind == "slowdown"]
        assert len(slowdowns) == 1
        incident = slowdowns[0]
        assert incident.machine == supervisor.machine_names[0]
        assert incident.round_index == result.index
        # Evidence carries the verified estimate, not just the alarm:
        # the 3x fault must show up as a factor well above 1.
        assert incident.evidence["slowdown_factor"] > 1.5
        assert incident.evidence["estimated"] > incident.evidence["declared"]

    def test_clean_round_yields_no_incidents(self, supervisor):
        result = supervisor.run_round()
        assert IncidentDetector().scan(result, supervisor.quarantine) == []


class TestUnverifiedDetection:
    def test_withheld_report_becomes_unverified_incident(self, supervisor):
        target = supervisor.machine_names[1]
        result = supervisor.run_round(
            RoundFaults(
                machine_faults={target: MachineFault("withhold_report", count=10)}
            )
        )
        assert target in result.withheld
        incidents = IncidentDetector().scan(result, supervisor.quarantine)
        unverified = [i for i in incidents if i.kind == "unverified"]
        assert [i.machine for i in unverified] == [target]
        assert unverified[0].severity == pytest.approx(0.7)


class TestCircuitTripDetection:
    def test_participant_ending_open_is_a_trip(self):
        supervisor = build_supervisor(failure_threshold=2)
        detector = IncidentDetector()
        target = supervisor.machine_names[0]
        result = None
        for _ in range(2):  # two consecutive alert rounds trip the circuit
            result = slow_round(supervisor)
        assert target in supervisor.quarantine.quarantined()
        incidents = detector.scan(result, supervisor.quarantine)
        trips = [i for i in incidents if i.kind == "circuit_trip"]
        assert [i.machine for i in trips] == [target]
        assert trips[0].evidence["reason"] == "slowdown_alert"

    def test_already_open_nonparticipant_is_not_re_reported(self, supervisor):
        supervisor.quarantine.force_open(supervisor.machine_names[0], "test")
        result = supervisor.run_round()
        incidents = IncidentDetector().scan(result, supervisor.quarantine)
        assert [i for i in incidents if i.kind == "circuit_trip"] == []


class TestInvariantPassThrough:
    def test_violations_become_severity_one_incidents(self, supervisor):
        result = supervisor.run_round()
        violation = InvariantViolation(
            round_index=result.index, invariant="feasibility", detail="boom"
        )
        incidents = IncidentDetector().scan(
            result, supervisor.quarantine, [violation]
        )
        broken = [i for i in incidents if i.kind == "invariant"]
        assert len(broken) == 1
        assert broken[0].severity == 1.0
        assert broken[0].machine is None
        assert broken[0].evidence["invariant"] == "feasibility"


class TestMessageLossDetection:
    def test_spike_over_quiet_baseline_alarms(self):
        detector = IncidentDetector()
        quarantine = build_supervisor().quarantine
        for index in range(3):  # quiet history builds a ~0 baseline
            assert detector.scan(make_result(index), quarantine) == []
        spike = make_result(3, bid_retries=5, report_retries=3)
        incidents = detector.scan(spike, quarantine)
        loss = [i for i in incidents if i.kind == "message_loss"]
        assert len(loss) == 1
        assert loss[0].machine is None
        assert loss[0].evidence["retries"] == 8

    def test_small_retry_counts_never_alarm(self):
        detector = IncidentDetector(loss_spike_min=4)
        quarantine = build_supervisor().quarantine
        result = make_result(0, bid_retries=3)
        assert detector.scan(result, quarantine) == []

    def test_sustained_loss_stops_alarming_as_baseline_adapts(self):
        detector = IncidentDetector(ema_alpha=1.0)  # instant adaptation
        quarantine = build_supervisor().quarantine
        first = detector.scan(make_result(0, bid_retries=10), quarantine)
        second = detector.scan(make_result(1, bid_retries=10), quarantine)
        assert [i.kind for i in first] == ["message_loss"]
        assert second == []  # 10 retries is the new normal

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_spike_factor": 1.0},
            {"loss_spike_min": 0},
            {"ema_alpha": 0.0},
            {"ema_alpha": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            IncidentDetector(**kwargs)
