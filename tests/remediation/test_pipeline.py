"""Closed-loop tests: the full pipeline wired into a supervisor."""

from __future__ import annotations

import pytest

from repro.remediation import (
    RemediationConfig,
    RemediationPipeline,
    default_scenarios,
    measure_mttr,
    run_scenario,
    scenario_fault_plan,
)
from repro.resilience.quarantine import CircuitState

from tests.remediation.conftest import build_supervisor, slow_round


class TestRemediationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shadow_rounds": 0},
            {"latency_tolerance": -0.01},
            {"max_actions_per_round": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RemediationConfig(**kwargs)


class TestClosedLoop:
    def test_slowdown_is_quarantined_within_one_round(self):
        pipeline = RemediationPipeline()
        supervisor = build_supervisor(remediation=pipeline)
        target = supervisor.machine_names[0]
        slow_round(supervisor)
        # One alert round is enough: the pipeline requarantined the
        # machine without waiting for failure_threshold organic trips.
        assert supervisor.quarantine.state_of(target) is CircuitState.OPEN
        report = pipeline.history[-1]
        assert report.acted
        assert {a.kind for a in report.applied} >= {"requarantine"}
        # The very next round runs clean on the remaining machines.
        result = supervisor.run_round()
        assert not result.voided
        gap = result.outcome.realised_latency / result.outcome.allocation.total_latency
        assert gap == pytest.approx(1.0, abs=0.05)

    def test_healthy_rounds_produce_no_pipeline_activity(self):
        pipeline = RemediationPipeline()
        supervisor = build_supervisor(remediation=pipeline)
        for _ in range(3):
            supervisor.run_round()
        assert len(pipeline.history) == 3
        assert all(not h.incidents for h in pipeline.history)
        assert all(not h.acted for h in pipeline.history)
        assert len(pipeline.journal) == 0

    def test_wal_ordering_for_every_applied_action(self):
        pipeline = RemediationPipeline()
        supervisor = build_supervisor(remediation=pipeline)
        for _ in range(2):
            slow_round(supervisor)
        applied_ids = {
            a.action_id for h in pipeline.history for a in h.applied
        }
        assert applied_ids
        records = pipeline.journal.records()
        for action_id in applied_ids:
            statuses = [r.status for r in records if r.action_id == action_id]
            assert statuses == ["proposed", "verified", "applying", "applied"]

    def test_max_actions_per_round_caps_the_queue(self):
        pipeline = RemediationPipeline(
            RemediationConfig(max_actions_per_round=1)
        )
        supervisor = build_supervisor(remediation=pipeline)
        slow_round(supervisor)  # would propose 3 actions uncapped
        report = pipeline.history[-1]
        assert len(report.proposed) == 1
        assert len(report.applied) <= 1


class TestScenarioSuite:
    def test_fault_plan_covers_exactly_the_fault_window(self):
        scenario = default_scenarios()[0]
        plan = scenario_fault_plan(scenario, [f"m{i}" for i in range(4)])
        faulted = [
            index
            for index, round_faults in enumerate(plan.rounds)
            if round_faults.machine_faults
        ]
        assert faulted == list(
            range(scenario.onset, scenario.onset + scenario.fault_rounds)
        )

    def test_unknown_fault_kind_is_rejected(self):
        scenario = default_scenarios()[0]
        bad = type(scenario)(name="bad", fault_kind="meteor-strike")
        with pytest.raises(ValueError, match="fault kind"):
            scenario_fault_plan(bad, ["m0", "m1", "m2", "m3"])

    def test_remediation_beats_organic_recovery(self):
        scenario = default_scenarios()[0]  # creeping-slowdown
        on = run_scenario(scenario, remediation=True, seed=0)
        off = run_scenario(scenario, remediation=False, seed=0)
        assert on.recovered and off.recovered
        assert on.mttr_rounds < off.mttr_rounds
        assert on.violations == 0
        assert off.violations == 0
        assert on.actions_applied > 0

    def test_measure_mttr_meets_the_acceptance_gate(self):
        comparison = measure_mttr(default_scenarios()[:2], seed=0)
        assert comparison.improvement >= 2.0
        assert comparison.violations_from_actions == 0
