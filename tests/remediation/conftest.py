"""Shared fixtures for the remediation pipeline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import TruthfulAgent
from repro.resilience import MachineFault, RoundFaults, RoundSupervisor
from repro.resilience.quarantine import QuarantinePolicy
from repro.resilience.supervisor import RoundResult


def build_supervisor(
    n_machines: int = 4,
    *,
    seed: int = 0,
    remediation=None,
    failure_threshold: int = 3,
    arrival_rate: float = 10.0,
) -> RoundSupervisor:
    """The MTTR scenarios' fleet: truthful agents on the batched engine."""
    agents = [TruthfulAgent(1.0 + 0.25 * k) for k in range(n_machines)]
    return RoundSupervisor(
        agents,
        arrival_rate,
        quarantine=QuarantinePolicy(failure_threshold=failure_threshold),
        rng=np.random.default_rng(seed),
        execution="batched",
        remediation=remediation,
    )


def slow_round(
    supervisor: RoundSupervisor, *, slowdown: float = 3.0, machine: int = 0
) -> RoundResult:
    """One round in which ``machine`` executes ``slowdown``x its bid."""
    target = supervisor.machine_names[machine]
    return supervisor.run_round(
        RoundFaults(
            machine_faults={
                target: MachineFault("slow_execution", slowdown=slowdown)
            }
        )
    )


def make_result(index: int = 0, **overrides) -> RoundResult:
    """A minimal synthetic RoundResult for detector unit tests."""
    base: dict = dict(
        index=index,
        participants=[],
        probes=[],
        quarantined=[],
        excluded=[],
        withheld=[],
        alerts=[],
        faulted=[],
        fault_kinds={},
        voided=False,
        outcome=None,
        loads={},
        payments={},
        utilities={},
        payment_notices={},
        bid_retries=0,
        report_retries=0,
        coordinator_restarts=0,
        arrival_rate=10.0,
        jobs_routed=0,
    )
    base.update(overrides)
    return RoundResult(**base)


@pytest.fixture
def supervisor() -> RoundSupervisor:
    return build_supervisor()


@pytest.fixture
def alert_round(supervisor):
    """(supervisor, result) for a round that raised a CUSUM alert."""
    result = slow_round(supervisor)
    assert result.alerts, "fixture expects the slowdown to trip CUSUM"
    return supervisor, result
