"""Smoke tests: every shipped example must run cleanly end to end.

Each example is executed as a subprocess (the way a user runs it) and
must exit 0 with the expected headline text on stdout.  The heavier
examples get generous but bounded timeouts so a regression that makes
one hang is caught rather than stalling CI forever.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: example file -> a string its output must contain
EXPECTED_OUTPUT = {
    "quickstart.py": "78.43",
    "strategic_manipulation.py": "lying pays",
    "protocol_simulation.py": "Verification: estimated execution values",
    "federation_market.py": "frugality ratio",
    "queueing_validation.py": "Pollaczek-Khinchine",
    "distributed_payments.py": "4 messages/machine",
    "day2_operations.py": "Crash handling",
}


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamplesRun:
    @pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
    def test_example_runs_and_prints_headline(self, script):
        result = _run(script)
        assert result.returncode == 0, result.stderr[-2000:]
        assert EXPECTED_OUTPUT[script] in result.stdout

    def test_every_example_file_is_covered(self):
        shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert shipped == set(EXPECTED_OUTPUT), (
            "examples/ and the smoke-test table are out of sync"
        )

    def test_examples_have_module_docstrings(self):
        for script in EXPECTED_OUTPUT:
            source = (EXAMPLES_DIR / script).read_text()
            assert source.lstrip().startswith(('"""', '#!')), script
            assert '"""' in source, f"{script} lacks a docstring"
