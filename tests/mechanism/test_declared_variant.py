"""The declared-compensation variant: reproduces the paper's Figure 2
prose but is provably non-truthful (see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import scenario_by_name, table1_configuration
from repro.experiments.table2 import build_bid_and_execution_vectors
from repro.mechanism import VerificationMechanism


class TestDeclaredCompensation:
    def test_compensation_uses_bids(self, declared_mechanism):
        bids = np.array([1.0, 2.0])
        executions = np.array([3.0, 2.0])
        outcome = declared_mechanism.run(bids, 6.0, executions)
        np.testing.assert_allclose(
            outcome.payments.compensation, bids * outcome.loads**2
        )

    def test_agrees_with_observed_when_execution_matches_bid(
        self, mechanism, declared_mechanism
    ):
        bids = np.array([1.0, 2.0, 5.0])
        observed = mechanism.run(bids, 9.0)
        declared = declared_mechanism.run(bids, 9.0)
        np.testing.assert_allclose(
            observed.payments.payment, declared.payments.payment
        )


class TestPaperLow2Prose:
    """'the payment and utility of C1 are negative' — Figure 2."""

    def test_low2_payment_negative(self, declared_mechanism):
        config = table1_configuration()
        bids, executions = build_bid_and_execution_vectors(
            config.cluster.true_values, scenario_by_name("Low2")
        )
        outcome = declared_mechanism.run(bids, config.arrival_rate, executions)
        assert outcome.payments.payment[0] < 0.0
        assert outcome.payments.utility[0] < 0.0

    def test_paper_bonus_argument_holds(self, declared_mechanism):
        # "The absolute value of the bonus is greater than the
        # compensation" — the paper's explanation of the negative payment.
        config = table1_configuration()
        bids, executions = build_bid_and_execution_vectors(
            config.cluster.true_values, scenario_by_name("Low2")
        )
        outcome = declared_mechanism.run(bids, config.arrival_rate, executions)
        assert outcome.payments.bonus[0] < 0.0
        assert abs(outcome.payments.bonus[0]) > outcome.payments.compensation[0]

    def test_observed_variant_disagrees_on_the_payment_sign(self, mechanism):
        # Under the formal Definition 3.3 the same scenario yields a
        # positive payment (the documented internal inconsistency).
        config = table1_configuration()
        bids, executions = build_bid_and_execution_vectors(
            config.cluster.true_values, scenario_by_name("Low2")
        )
        outcome = mechanism.run(bids, config.arrival_rate, executions)
        assert outcome.payments.payment[0] > 0.0
        assert outcome.payments.utility[0] < 0.0


class TestNonTruthfulness:
    """Overbidding strictly gains under declared compensation."""

    def test_overbidding_gains(self, declared_mechanism, small_true_values):
        t = small_true_values
        truthful = declared_mechanism.run(t, 10.0, t).payments.utility[0]
        bids = t.copy()
        bids[0] *= 1.5
        executions = t.copy()  # executes at capacity either way
        deviated = declared_mechanism.run(bids, 10.0, executions).payments.utility[0]
        assert deviated > truthful + 1e-6

    def test_marginal_gain_at_truth_is_positive(self, declared_mechanism, small_true_values):
        # dU/db|_{b=t} = x_i^2 > 0: the first-order condition fails at
        # the truth, which is the analytic proof of non-truthfulness.
        t = small_true_values
        h = 1e-6

        def utility(bid: float) -> float:
            bids = t.copy()
            bids[0] = bid
            return float(
                declared_mechanism.run(bids, 10.0, t).payments.utility[0]
            )

        slope = (utility(t[0] + h) - utility(t[0] - h)) / (2 * h)
        expected_x = 10.0 * (1.0 / t[0]) / np.sum(1.0 / t)
        assert slope == pytest.approx(expected_x**2, rel=1e-3)

    def test_observed_variant_has_zero_marginal_gain_at_truth(
        self, mechanism, small_true_values
    ):
        # Contrast: the truthful mechanism's utility is stationary at
        # the truth (interior maximum).
        t = small_true_values
        h = 1e-6

        def utility(bid: float) -> float:
            bids = t.copy()
            bids[0] = bid
            return float(mechanism.run(bids, 10.0, t).payments.utility[0])

        slope = (utility(t[0] + h) - utility(t[0] - h)) / (2 * h)
        assert abs(slope) < 1e-3
