"""Unit tests for the VCG baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import optimal_latency_excluding_each, pr_loads
from repro.mechanism import VCGMechanism, VerificationMechanism


class TestClarkePayments:
    def test_payment_formula(self, vcg):
        bids = np.array([1.0, 2.0, 5.0])
        outcome = vcg.run(bids, 9.0)
        excluded = optimal_latency_excluding_each(bids, 9.0)
        others_cost = np.array(
            [
                float(np.dot(bids, outcome.loads**2))
                - bids[i] * outcome.loads[i] ** 2
                for i in range(3)
            ]
        )
        np.testing.assert_allclose(outcome.payments.payment, excluded - others_cost)

    def test_payment_is_execution_independent(self, vcg):
        # No verification: payments cannot react to observed executions.
        bids = np.array([1.0, 2.0])
        honest = vcg.run(bids, 5.0, np.array([1.0, 2.0]))
        slow = vcg.run(bids, 5.0, np.array([4.0, 2.0]))
        np.testing.assert_allclose(
            honest.payments.payment, slow.payments.payment
        )

    def test_uses_verification_flag_false(self):
        assert VCGMechanism.uses_verification is False


class TestTruthfulnessInBids:
    @pytest.mark.parametrize("factor", [0.3, 0.7, 1.4, 3.0])
    def test_bid_deviation_never_gains(self, vcg, small_true_values, factor):
        t = small_true_values
        truthful = vcg.run(t, 10.0, t).payments.utility[0]
        bids = t.copy()
        bids[0] *= factor
        deviated = vcg.run(bids, 10.0, t).payments.utility[0]
        assert deviated <= truthful + 1e-9

    def test_voluntary_participation(self, vcg, cluster):
        t = cluster.true_values
        outcome = vcg.run(t, 20.0, t, true_values=t)
        assert np.all(outcome.payments.utility >= -1e-9)


class TestEquivalenceWithVerificationMechanism:
    """Key structural finding (documented in EXPERIMENTS.md): when every
    machine executes exactly as it bid, the verification mechanism's
    payments coincide with Clarke/VCG payments.  Verification only
    changes payments when observed execution differs from the bids.
    """

    def test_identical_payments_when_execution_matches_bids(self, vcg, mechanism):
        bids = np.array([1.0, 2.0, 5.0, 10.0])
        v = vcg.run(bids, 12.0)
        m = mechanism.run(bids, 12.0)
        np.testing.assert_allclose(v.payments.payment, m.payments.payment)

    def test_payments_differ_when_another_machine_executes_slowly(
        self, vcg, mechanism
    ):
        bids = np.array([1.0, 2.0, 5.0])
        executions = np.array([1.0, 4.0, 5.0])  # machine 1 runs slow
        v = vcg.run(bids, 9.0, executions)
        m = mechanism.run(bids, 9.0, executions)
        # Machine 0's payment reacts to machine 1's slowdown only under
        # verification (its bonus shrinks with the realised latency).
        assert m.payments.payment[0] < v.payments.payment[0]

    def test_allocation_identical(self, vcg, mechanism):
        bids = np.array([1.0, 2.0, 5.0])
        np.testing.assert_allclose(
            vcg.run(bids, 9.0).loads, mechanism.run(bids, 9.0).loads
        )
        np.testing.assert_allclose(vcg.run(bids, 9.0).loads, pr_loads(bids, 9.0))
