"""Unit tests for the Archer–Tardos one-parameter baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanism import ArcherTardosMechanism


class TestClosedFormPayments:
    def test_bonus_matches_numeric_integral(self, archer_tardos):
        bids = np.array([1.0, 2.0, 5.0])
        rate = 9.0
        outcome = archer_tardos.run(bids, rate)
        inv = 1.0 / bids
        for i in range(3):
            s_minus = float(inv.sum() - inv[i])
            numeric = ArcherTardosMechanism.payment_integral_numeric(
                float(bids[i]), s_minus, rate
            )
            assert outcome.payments.bonus[i] == pytest.approx(numeric, rel=1e-8)

    def test_compensation_is_declared_cost(self, archer_tardos):
        bids = np.array([1.0, 4.0])
        outcome = archer_tardos.run(bids, 5.0)
        np.testing.assert_allclose(
            outcome.payments.compensation, bids * outcome.loads**2
        )

    def test_work_curve_monotonicity(self, archer_tardos):
        # x_i^2 must be non-increasing in the own bid (the AT condition).
        others = np.array([2.0, 5.0])
        rate = 8.0
        works = []
        for bid in np.linspace(0.5, 6.0, 25):
            bids = np.concatenate(([bid], others))
            works.append(float(archer_tardos.run(bids, rate).loads[0] ** 2))
        assert np.all(np.diff(works) < 0.0)


class TestClosedFormIntegralRegression:
    """1.8.0 moved :meth:`payments` off scipy quadrature onto the named
    closed form ``R^2/(S_{-i}(b S_{-i} + 1))``; this pins the swap —
    the two evaluations must agree far below any payment tolerance."""

    def test_closed_form_matches_quadrature_to_1e12(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            bid = float(rng.uniform(0.1, 10.0))
            s_minus = float(rng.uniform(0.1, 10.0))
            rate = float(rng.uniform(0.5, 50.0))
            closed = float(
                ArcherTardosMechanism.payment_integral(bid, s_minus, rate)
            )
            numeric = ArcherTardosMechanism.payment_integral_numeric(
                bid, s_minus, rate
            )
            assert closed == pytest.approx(numeric, rel=1e-12)

    def test_payments_use_the_named_closed_form(self, archer_tardos):
        bids = np.array([1.0, 2.0, 5.0])
        rate = 9.0
        outcome = archer_tardos.run(bids, rate)
        inv = 1.0 / bids
        s_minus = inv.sum() - inv
        np.testing.assert_array_equal(
            outcome.payments.bonus,
            ArcherTardosMechanism.payment_integral(bids, s_minus, rate),
        )

    def test_closed_form_is_vectorised(self):
        bids = np.array([0.5, 1.0, 4.0])
        s_minus = np.array([2.0, 1.0, 0.25])
        batch = ArcherTardosMechanism.payment_integral(bids, s_minus, 7.0)
        for i in range(3):
            assert batch[i] == ArcherTardosMechanism.payment_integral(
                float(bids[i]), float(s_minus[i]), 7.0
            )

    def test_hot_path_does_not_import_scipy(self):
        # The quadrature import is deferred into the check-only helper.
        # Run in a subprocess: an in-process module reload would rebind
        # the class and break `type(m) is ArcherTardosMechanism` checks
        # for the rest of the session.
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        script = (
            "import sys\n"
            "import numpy as np\n"
            "from repro.mechanism import ArcherTardosMechanism\n"
            # The M/M/1 baseline (same package) imports scipy.integrate
            # at module top; evict it so only run() is on trial.
            "for name in [m for m in sys.modules\n"
            "             if m == 'scipy' or m.startswith('scipy.')]:\n"
            "    del sys.modules[name]\n"
            "ArcherTardosMechanism().run(np.array([1.0, 2.0]), 5.0)\n"
            "assert 'scipy.integrate' not in sys.modules\n"
        )
        subprocess.run([sys.executable, "-c", script], check=True, env=env)


class TestTruthfulness:
    @pytest.mark.parametrize("factor", [0.25, 0.6, 1.3, 2.0, 6.0])
    def test_bid_deviation_never_gains(self, archer_tardos, small_true_values, factor):
        t = small_true_values
        truthful = archer_tardos.run(t, 10.0, t).payments.utility[2]
        bids = t.copy()
        bids[2] *= factor
        deviated = archer_tardos.run(bids, 10.0, t).payments.utility[2]
        assert deviated <= truthful + 1e-9

    def test_first_order_condition_at_truth(self, archer_tardos, small_true_values):
        t = small_true_values
        h = 1e-6

        def utility(bid: float) -> float:
            bids = t.copy()
            bids[0] = bid
            return float(archer_tardos.run(bids, 10.0, t).payments.utility[0])

        slope = (utility(t[0] + h) - utility(t[0] - h)) / (2 * h)
        assert abs(slope) < 1e-4

    def test_voluntary_participation(self, archer_tardos, cluster):
        t = cluster.true_values
        outcome = archer_tardos.run(t, 20.0, t, true_values=t)
        assert np.all(outcome.payments.utility >= 0.0)

    def test_no_verification(self, archer_tardos):
        bids = np.array([1.0, 2.0])
        honest = archer_tardos.run(bids, 5.0, np.array([1.0, 2.0]))
        slow = archer_tardos.run(bids, 5.0, np.array([3.0, 2.0]))
        np.testing.assert_allclose(honest.payments.payment, slow.payments.payment)


class TestEquivalenceWithClarke:
    """Structural finding: with the work curve w_i = x_i^2, the AT
    payment integral R^2/(S_{-i}(b_i S_{-i} + 1)) simplifies (using
    b_i S_{-i} + 1 = b_i S) to R^2/(b_i S_{-i} S), which is exactly the
    Clarke bonus L_{-i} - L = R^2 (1/b_i) / (S_{-i} S).  On this
    problem the normalised one-parameter mechanism *is* VCG.  See
    EXPERIMENTS.md (A5).
    """

    def test_at_equals_vcg_payment_for_all_bids(self, archer_tardos, vcg):
        rng = np.random.default_rng(13)
        for _ in range(20):
            bids = rng.uniform(0.5, 10.0, size=6)
            rate = float(rng.uniform(1.0, 50.0))
            at = archer_tardos.run(bids, rate)
            clarke = vcg.run(bids, rate)
            np.testing.assert_allclose(
                at.payments.payment, clarke.payments.payment, rtol=1e-10
            )

    def test_at_equals_verification_payment_on_honest_execution(
        self, archer_tardos, mechanism, cluster
    ):
        # ... and the verification mechanism coincides with both when
        # machines execute exactly as they bid.
        t = cluster.true_values
        at = archer_tardos.run(t, 20.0, t)
        verif = mechanism.run(t, 20.0, t)
        np.testing.assert_allclose(
            at.payments.payment, verif.payments.payment, rtol=1e-10
        )
