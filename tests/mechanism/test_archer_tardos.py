"""Unit tests for the Archer–Tardos one-parameter baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanism import ArcherTardosMechanism


class TestClosedFormPayments:
    def test_bonus_matches_numeric_integral(self, archer_tardos):
        bids = np.array([1.0, 2.0, 5.0])
        rate = 9.0
        outcome = archer_tardos.run(bids, rate)
        inv = 1.0 / bids
        for i in range(3):
            s_minus = float(inv.sum() - inv[i])
            numeric = ArcherTardosMechanism.payment_integral_numeric(
                float(bids[i]), s_minus, rate
            )
            assert outcome.payments.bonus[i] == pytest.approx(numeric, rel=1e-8)

    def test_compensation_is_declared_cost(self, archer_tardos):
        bids = np.array([1.0, 4.0])
        outcome = archer_tardos.run(bids, 5.0)
        np.testing.assert_allclose(
            outcome.payments.compensation, bids * outcome.loads**2
        )

    def test_work_curve_monotonicity(self, archer_tardos):
        # x_i^2 must be non-increasing in the own bid (the AT condition).
        others = np.array([2.0, 5.0])
        rate = 8.0
        works = []
        for bid in np.linspace(0.5, 6.0, 25):
            bids = np.concatenate(([bid], others))
            works.append(float(archer_tardos.run(bids, rate).loads[0] ** 2))
        assert np.all(np.diff(works) < 0.0)


class TestTruthfulness:
    @pytest.mark.parametrize("factor", [0.25, 0.6, 1.3, 2.0, 6.0])
    def test_bid_deviation_never_gains(self, archer_tardos, small_true_values, factor):
        t = small_true_values
        truthful = archer_tardos.run(t, 10.0, t).payments.utility[2]
        bids = t.copy()
        bids[2] *= factor
        deviated = archer_tardos.run(bids, 10.0, t).payments.utility[2]
        assert deviated <= truthful + 1e-9

    def test_first_order_condition_at_truth(self, archer_tardos, small_true_values):
        t = small_true_values
        h = 1e-6

        def utility(bid: float) -> float:
            bids = t.copy()
            bids[0] = bid
            return float(archer_tardos.run(bids, 10.0, t).payments.utility[0])

        slope = (utility(t[0] + h) - utility(t[0] - h)) / (2 * h)
        assert abs(slope) < 1e-4

    def test_voluntary_participation(self, archer_tardos, cluster):
        t = cluster.true_values
        outcome = archer_tardos.run(t, 20.0, t, true_values=t)
        assert np.all(outcome.payments.utility >= 0.0)

    def test_no_verification(self, archer_tardos):
        bids = np.array([1.0, 2.0])
        honest = archer_tardos.run(bids, 5.0, np.array([1.0, 2.0]))
        slow = archer_tardos.run(bids, 5.0, np.array([3.0, 2.0]))
        np.testing.assert_allclose(honest.payments.payment, slow.payments.payment)


class TestEquivalenceWithClarke:
    """Structural finding: with the work curve w_i = x_i^2, the AT
    payment integral R^2/(S_{-i}(b_i S_{-i} + 1)) simplifies (using
    b_i S_{-i} + 1 = b_i S) to R^2/(b_i S_{-i} S), which is exactly the
    Clarke bonus L_{-i} - L = R^2 (1/b_i) / (S_{-i} S).  On this
    problem the normalised one-parameter mechanism *is* VCG.  See
    EXPERIMENTS.md (A5).
    """

    def test_at_equals_vcg_payment_for_all_bids(self, archer_tardos, vcg):
        rng = np.random.default_rng(13)
        for _ in range(20):
            bids = rng.uniform(0.5, 10.0, size=6)
            rate = float(rng.uniform(1.0, 50.0))
            at = archer_tardos.run(bids, rate)
            clarke = vcg.run(bids, rate)
            np.testing.assert_allclose(
                at.payments.payment, clarke.payments.payment, rtol=1e-10
            )

    def test_at_equals_verification_payment_on_honest_execution(
        self, archer_tardos, mechanism, cluster
    ):
        # ... and the verification mechanism coincides with both when
        # machines execute exactly as they bid.
        t = cluster.true_values
        at = archer_tardos.run(t, 20.0, t)
        verif = mechanism.run(t, 20.0, t)
        np.testing.assert_allclose(
            at.payments.payment, verif.payments.payment, rtol=1e-10
        )
