"""Unit tests for the vectorised batch mechanism evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanism import VerificationMechanism
from repro.mechanism.batch import batch_run, batch_utility_of_agent


def _random_batch(rng, k=50, n=6):
    t = rng.uniform(0.5, 10.0, size=n)
    bids = t * rng.uniform(0.3, 3.0, size=(k, n))
    execs = bids * rng.uniform(1.0, 2.0, size=(k, n))
    return bids, execs


class TestAgreementWithScalarPath:
    @pytest.mark.parametrize("mode", ["observed", "declared"])
    def test_matches_loop_of_scalar_runs(self, rng, mode):
        bids, execs = _random_batch(rng)
        batch = batch_run(bids, 9.0, execs, compensation=mode)
        mechanism = VerificationMechanism(mode)
        for k in range(bids.shape[0]):
            outcome = mechanism.run(bids[k], 9.0, execs[k])
            np.testing.assert_allclose(batch.loads[k], outcome.loads, rtol=1e-13)
            np.testing.assert_allclose(
                batch.payment[k], outcome.payments.payment, rtol=1e-12
            )
            np.testing.assert_allclose(
                batch.utility[k], outcome.payments.utility, rtol=1e-12, atol=1e-12
            )
            assert batch.realised_latency[k] == pytest.approx(
                outcome.realised_latency
            )

    def test_default_executions_are_bids(self, rng):
        bids, _ = _random_batch(rng, k=5)
        batch = batch_run(bids, 9.0)
        explicit = batch_run(bids, 9.0, bids)
        np.testing.assert_allclose(batch.payment, explicit.payment)


class TestBatchInvariants:
    def test_conservation_per_profile(self, rng):
        bids, execs = _random_batch(rng, k=30)
        batch = batch_run(bids, 9.0, execs)
        np.testing.assert_allclose(batch.loads.sum(axis=1), 9.0)

    def test_identities(self, rng):
        bids, execs = _random_batch(rng, k=30)
        batch = batch_run(bids, 9.0, execs)
        np.testing.assert_allclose(
            batch.payment, batch.compensation + batch.bonus
        )
        np.testing.assert_allclose(
            batch.utility, batch.payment + batch.valuation
        )
        assert batch.n_profiles == 30


class TestBatchUtilityOfAgent:
    def test_grid_matches_scalar_utilities(self, small_true_values):
        mechanism = VerificationMechanism()
        bid_grid = np.array([0.5, 1.0, 2.0]) * small_true_values[0]
        utilities = batch_utility_of_agent(
            0, bid_grid, small_true_values[0], small_true_values, 10.0
        )
        for bid, utility in zip(bid_grid, utilities):
            bids = small_true_values.copy()
            bids[0] = bid
            expected = mechanism.run(
                bids, 10.0, small_true_values
            ).payments.utility[0]
            assert utility == pytest.approx(float(expected))

    def test_broadcasting_grids(self, small_true_values):
        bid_grid = np.array([0.5, 1.0, 2.0])[:, None] * small_true_values[1]
        exec_grid = np.array([1.0, 1.5])[None, :] * small_true_values[1]
        surface = batch_utility_of_agent(
            1, bid_grid, exec_grid, small_true_values, 10.0
        )
        assert surface.shape == (3, 2)
        # Truth (1.0, 1.0) must dominate on the grid.
        assert surface.max() == pytest.approx(surface[1, 0])


class TestValidation:
    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            batch_run(np.ones(3), 5.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            batch_run(np.ones((2, 3)), 5.0, np.ones((2, 4)))

    def test_rejects_nonpositive(self):
        bad = np.ones((2, 3))
        bad[0, 0] = 0.0
        with pytest.raises(ValueError):
            batch_run(bad, 5.0)

    def test_rejects_single_machine(self):
        with pytest.raises(ValueError, match="two machines"):
            batch_run(np.ones((2, 1)), 5.0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="compensation"):
            batch_run(np.ones((2, 3)), 5.0, compensation="bogus")
