"""Unit tests for the paper's verification mechanism (Definition 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import optimal_latency_excluding_each, pr_loads
from repro.mechanism import VerificationMechanism


class TestConstruction:
    def test_default_compensation_is_observed(self):
        assert VerificationMechanism().compensation_mode == "observed"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="compensation"):
            VerificationMechanism("bogus")

    def test_uses_verification_flag(self):
        assert VerificationMechanism.uses_verification is True


class TestAllocationStage:
    def test_allocation_is_pr(self, mechanism):
        bids = np.array([1.0, 2.0, 5.0])
        outcome = mechanism.run(bids, 7.0)
        np.testing.assert_allclose(outcome.loads, pr_loads(bids, 7.0))

    def test_allocation_follows_bids_not_truth(self, mechanism):
        true = np.array([1.0, 1.0])
        bids = np.array([1.0, 3.0])
        outcome = mechanism.run(bids, 8.0, true, true_values=true)
        # The mechanism cannot see the truth; it must allocate on bids.
        np.testing.assert_allclose(outcome.loads, [6.0, 2.0])


class TestPaymentDefinition:
    """P_i = C_i + B_i with the paper's formulas."""

    def test_compensation_equals_observed_cost(self, mechanism):
        bids = np.array([1.0, 2.0])
        executions = np.array([1.5, 2.0])
        outcome = mechanism.run(bids, 6.0, executions)
        np.testing.assert_allclose(
            outcome.payments.compensation, executions * outcome.loads**2
        )

    def test_bonus_is_marginal_contribution(self, mechanism):
        bids = np.array([1.0, 2.0, 4.0])
        outcome = mechanism.run(bids, 6.0)
        excluded = optimal_latency_excluding_each(bids, 6.0)
        expected = excluded - outcome.realised_latency
        np.testing.assert_allclose(outcome.payments.bonus, expected)

    def test_utility_equals_bonus_under_observed_compensation(self, mechanism):
        # C_i cancels the valuation exactly, so U_i = B_i.
        bids = np.array([1.0, 2.0, 5.0])
        executions = np.array([1.0, 2.5, 5.0])
        outcome = mechanism.run(bids, 9.0, executions)
        np.testing.assert_allclose(outcome.payments.utility, outcome.payments.bonus)

    def test_execution_defaults_to_bids(self, mechanism):
        bids = np.array([1.0, 3.0])
        outcome = mechanism.run(bids, 4.0)
        np.testing.assert_allclose(outcome.execution_values, bids)

    def test_payment_ignores_own_execution_value(self, mechanism):
        # Algebraic consequence of Def 3.3: P_i = L_{-i} - sum_{j!=i}
        # t̃_j x_j^2, independent of agent i's own observed value.
        bids = np.array([1.0, 2.0, 5.0])
        fast = mechanism.run(bids, 9.0, np.array([1.0, 2.0, 5.0]))
        slow = mechanism.run(bids, 9.0, np.array([3.0, 2.0, 5.0]))
        assert fast.payments.payment[0] == pytest.approx(slow.payments.payment[0])
        # ... but its utility strictly drops when it executes slower.
        assert slow.payments.utility[0] < fast.payments.utility[0]


class TestTheorem31Truthfulness:
    """Bidding the truth and executing at capacity is dominant."""

    @pytest.mark.parametrize("bid_factor", [0.3, 0.5, 0.9, 1.1, 2.0, 4.0])
    def test_bid_deviations_never_gain(self, mechanism, small_true_values, bid_factor):
        t = small_true_values
        truthful = mechanism.run(t, 10.0, t).payments.utility[0]
        bids = t.copy()
        bids[0] *= bid_factor
        executions = t.copy()
        deviated = mechanism.run(bids, 10.0, executions).payments.utility[0]
        assert deviated <= truthful + 1e-9

    @pytest.mark.parametrize("exec_factor", [1.25, 2.0, 5.0])
    def test_slow_execution_never_gains(self, mechanism, small_true_values, exec_factor):
        t = small_true_values
        truthful = mechanism.run(t, 10.0, t).payments.utility[0]
        executions = t.copy()
        executions[0] *= exec_factor
        deviated = mechanism.run(t, 10.0, executions).payments.utility[0]
        assert deviated < truthful

    def test_joint_deviations_never_gain(self, mechanism, small_true_values):
        t = small_true_values
        truthful = mechanism.run(t, 10.0, t).payments.utility[1]
        for bf in (0.25, 0.5, 2.0, 3.0):
            for ef in (1.0, 1.5, 2.0):
                bids = t.copy()
                bids[1] *= bf
                executions = t.copy()
                executions[1] *= ef
                deviated = mechanism.run(bids, 10.0, executions).payments.utility[1]
                assert deviated <= truthful + 1e-9


class TestTheorem32VoluntaryParticipation:
    def test_truthful_utilities_nonnegative(self, mechanism, cluster):
        t = cluster.true_values
        outcome = mechanism.run(t, 20.0, t, true_values=t)
        assert np.all(outcome.payments.utility >= 0.0)

    def test_holds_even_when_others_lie(self, mechanism, small_true_values):
        # VP must hold for a truthful agent for *every* profile of the
        # others' bids (Definition 3.5 quantifies over b_{-i}).
        t = small_true_values
        rng = np.random.default_rng(5)
        for _ in range(50):
            bids = t * rng.uniform(0.3, 3.0, size=t.size)
            bids[2] = t[2]  # agent 2 is truthful
            executions = bids.copy()
            executions[2] = t[2]
            # Others execute as they bid; whether that is above or
            # below their own truth is irrelevant to agent 2's VP.
            outcome = mechanism.run(bids, 10.0, executions)
            assert outcome.payments.utility[2] >= -1e-9


class TestDominanceBoundary:
    """Documented limitation: Theorem 3.1's dominance quantifies over the
    other agents' *bids*, with those agents executing as declared.  If
    an opponent's execution deviates from its bid, matching the
    opponent's distorted bid scale can strictly beat literal truth —
    the agent is correcting the allocation toward realised-optimal.
    (Against bid-consistent opponents, truth always dominates: see the
    hypothesis suite.)
    """

    def test_truth_not_optimal_against_bid_inconsistent_opponent(self, mechanism):
        # Opponent bids 4 but actually executes at its true slope 1.
        def utility(b1: float) -> float:
            outcome = mechanism.run(
                np.array([b1, 4.0]), 10.0, np.array([1.0, 1.0])
            )
            return float(outcome.payments.utility[0])

        # Matching the opponent's scale restores the realised-optimal
        # 50/50 split and strictly beats bidding the literal truth.
        assert utility(4.0) > utility(1.0)

    def test_dominance_restored_when_opponent_executes_as_bid(self, mechanism):
        def utility(b1: float) -> float:
            outcome = mechanism.run(
                np.array([b1, 4.0]), 10.0, np.array([1.0, 4.0])
            )
            return float(outcome.payments.utility[0])

        assert utility(1.0) >= utility(4.0)
        assert utility(1.0) >= utility(0.5)


class TestVPBoundary:
    """Documented limitation: Theorem 3.2 quantifies over the other
    agents' *bids* but assumes they execute as declared.  A hidden
    slowdown by another machine inflates the realised latency and can
    push an honest machine's bonus (and utility) negative.
    """

    def test_honest_agent_can_lose_when_another_under_executes(self, mechanism):
        t = np.array([1.0, 1.0, 1.0])
        executions = np.array([25.0, 1.0, 1.0])  # machine 0 secretly crawls
        outcome = mechanism.run(t, 9.0, executions)
        assert outcome.payments.utility[1] < 0.0  # honest machine loses

    def test_vp_restored_when_everyone_executes_as_bid(self, mechanism):
        t = np.array([1.0, 1.0, 1.0])
        bids = np.array([25.0, 1.0, 1.0])  # machine 0 bids absurdly high
        outcome = mechanism.run(bids, 9.0, bids)
        assert outcome.payments.utility[1] >= 0.0


class TestEfficiency:
    def test_truthful_profile_minimises_latency(self, mechanism, cluster):
        t = cluster.true_values
        outcome = mechanism.run(t, 20.0, t)
        assert outcome.realised_latency == pytest.approx(400.0 / 5.1)

    def test_any_lie_raises_realised_latency(self, mechanism, cluster):
        t = cluster.true_values
        base = mechanism.run(t, 20.0, t).realised_latency
        rng = np.random.default_rng(9)
        for _ in range(25):
            bids = t * rng.uniform(0.3, 3.0, size=t.size)
            outcome = mechanism.run(bids, 20.0, t)
            assert outcome.realised_latency >= base - 1e-9


class TestInputValidation:
    def test_execution_below_truth_rejected(self, mechanism):
        t = np.array([2.0, 2.0])
        with pytest.raises(ValueError, match="faster than their capacity"):
            mechanism.run(t, 5.0, np.array([1.0, 2.0]), true_values=t)

    def test_mismatched_lengths_rejected(self, mechanism):
        with pytest.raises(ValueError):
            mechanism.run(np.array([1.0, 2.0]), 5.0, np.array([1.0]))

    def test_nonpositive_bid_rejected(self, mechanism):
        with pytest.raises(ValueError):
            mechanism.run(np.array([1.0, -2.0]), 5.0)

    def test_metadata_names_mechanism(self, mechanism):
        outcome = mechanism.run(np.array([1.0, 2.0]), 5.0)
        assert outcome.metadata["mechanism"] == "VerificationMechanism"


class TestUtilityOf:
    def test_matches_full_run(self, mechanism):
        others = np.array([2.0, 5.0])
        direct = mechanism.utility_of(0, 1.0, 1.0, others, 8.0)
        full = mechanism.run(np.array([1.0, 2.0, 5.0]), 8.0).payments.utility[0]
        assert direct == pytest.approx(full)

    def test_insertion_respects_position(self, mechanism):
        others = np.array([2.0, 5.0])
        middle = mechanism.utility_of(1, 1.0, 1.0, others, 8.0)
        full = mechanism.run(np.array([2.0, 1.0, 5.0]), 8.0).payments.utility[1]
        assert middle == pytest.approx(full)
