"""Tests for the Mechanism base template (shared run() behaviour)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanism import (
    ArcherTardosMechanism,
    VCGMechanism,
    VerificationMechanism,
)
from repro.mechanism.base import Mechanism

ALL_MECHANISMS = [
    VerificationMechanism(),
    VerificationMechanism("declared"),
    VCGMechanism(),
    ArcherTardosMechanism(),
]


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS, ids=lambda m: repr(m))
class TestRunTemplate:
    def test_execution_defaults_to_bids(self, mechanism):
        bids = np.array([1.0, 2.0])
        outcome = mechanism.run(bids, 5.0)
        np.testing.assert_allclose(outcome.execution_values, bids)

    def test_true_values_recorded_when_given(self, mechanism):
        bids = np.array([1.0, 2.0])
        outcome = mechanism.run(bids, 5.0, bids, true_values=bids)
        np.testing.assert_allclose(outcome.true_values, bids)

    def test_true_values_none_by_default(self, mechanism):
        outcome = mechanism.run(np.array([1.0, 2.0]), 5.0)
        assert outcome.true_values is None

    def test_capacity_constraint_enforced_with_true_values(self, mechanism):
        t = np.array([2.0, 2.0])
        with pytest.raises(ValueError, match="capacity"):
            mechanism.run(t, 5.0, np.array([1.0, 2.0]), true_values=t)

    def test_metadata_names_the_class(self, mechanism):
        outcome = mechanism.run(np.array([1.0, 2.0]), 5.0)
        assert outcome.metadata["mechanism"] == type(mechanism).__name__

    def test_rate_validated(self, mechanism):
        with pytest.raises(ValueError):
            mechanism.run(np.array([1.0, 2.0]), -5.0)

    def test_length_mismatch_rejected(self, mechanism):
        with pytest.raises(ValueError, match="same length"):
            mechanism.run(np.array([1.0, 2.0]), 5.0, np.array([1.0]))

    def test_payment_identities(self, mechanism):
        from repro.testing import assert_payment_identities

        outcome = mechanism.run(np.array([1.0, 2.0, 5.0]), 7.0)
        assert_payment_identities(outcome)

    def test_allocation_feasible(self, mechanism):
        from repro.testing import assert_feasible_allocation

        outcome = mechanism.run(np.array([1.0, 2.0, 5.0]), 7.0)
        assert_feasible_allocation(outcome.allocation)


class TestValuationsHelper:
    def test_valuations_formula(self):
        from repro.allocation import pr_allocation

        allocation = pr_allocation(np.array([1.0, 2.0]), 6.0)
        executions = np.array([2.0, 2.0])
        valuations = Mechanism._valuations(allocation, executions)
        np.testing.assert_allclose(valuations, -executions * allocation.loads**2)
