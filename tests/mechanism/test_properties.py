"""Unit tests for the mechanism property audits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanism import (
    VerificationMechanism,
    best_deviation_gain,
    frugality_ratio,
    truthfulness_audit,
    voluntary_participation_margin,
)


class TestBestDeviationGain:
    def test_truthful_mechanism_shows_no_gain(self, mechanism, small_true_values):
        result = best_deviation_gain(mechanism, small_true_values, 10.0, 0)
        assert result.gain <= 1e-9

    def test_declared_variant_shows_gain(self, declared_mechanism, small_true_values):
        result = best_deviation_gain(declared_mechanism, small_true_values, 10.0, 0)
        assert result.gain > 0.01
        assert result.best_bid > small_true_values[0]  # overbidding wins

    def test_execution_factor_below_one_rejected(self, mechanism, small_true_values):
        with pytest.raises(ValueError, match=">= 1"):
            best_deviation_gain(
                mechanism, small_true_values, 10.0, 0, exec_factors=(0.5,)
            )

    def test_agent_index_validated(self, mechanism, small_true_values):
        with pytest.raises(IndexError):
            best_deviation_gain(mechanism, small_true_values, 10.0, 99)

    def test_truthful_utility_recorded(self, mechanism, small_true_values):
        result = best_deviation_gain(mechanism, small_true_values, 10.0, 1)
        direct = mechanism.run(
            small_true_values, 10.0, small_true_values
        ).payments.utility[1]
        assert result.truthful_utility == pytest.approx(direct)


class TestTruthfulnessAudit:
    def test_verification_mechanism_passes(self, mechanism, small_true_values):
        report = truthfulness_audit(mechanism, small_true_values, 10.0)
        assert report.is_truthful
        assert len(report.deviations) == small_true_values.size

    def test_declared_variant_fails(self, declared_mechanism, small_true_values):
        report = truthfulness_audit(declared_mechanism, small_true_values, 10.0)
        assert not report.is_truthful
        assert report.worst().gain == report.max_gain

    def test_audit_covers_every_agent(self, mechanism, small_true_values):
        report = truthfulness_audit(mechanism, small_true_values, 10.0)
        assert [d.agent for d in report.deviations] == list(
            range(small_true_values.size)
        )


class TestVoluntaryParticipation:
    def test_margin_nonnegative_for_paper_mechanism(self, mechanism, cluster):
        margin = voluntary_participation_margin(mechanism, cluster.true_values, 20.0)
        assert margin >= 0.0

    def test_margin_is_min_utility(self, mechanism, small_true_values):
        margin = voluntary_participation_margin(mechanism, small_true_values, 10.0)
        outcome = mechanism.run(small_true_values, 10.0, small_true_values)
        assert margin == pytest.approx(float(outcome.payments.utility.min()))

    def test_margin_scales_with_rate_squared(self, mechanism, small_true_values):
        m1 = voluntary_participation_margin(mechanism, small_true_values, 10.0)
        m2 = voluntary_participation_margin(mechanism, small_true_values, 20.0)
        assert m2 == pytest.approx(4.0 * m1)


class TestFrugalityRatio:
    def test_matches_outcome_property(self, mechanism, cluster):
        t = cluster.true_values
        outcome = mechanism.run(t, 20.0, t)
        assert frugality_ratio(outcome) == outcome.frugality_ratio

    def test_truthful_ratio_at_least_one(self, mechanism, cluster):
        t = cluster.true_values
        outcome = mechanism.run(t, 20.0, t)
        assert frugality_ratio(outcome) >= 1.0
