"""Unit tests for the M/M/1 truthful mechanism (companion paper [8])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanism.mm1_mechanism import MM1TruthfulMechanism


@pytest.fixture
def mechanism() -> MM1TruthfulMechanism:
    return MM1TruthfulMechanism()


@pytest.fixture
def true_values() -> np.ndarray:
    # mu = 5, 2.5, 1.25 (total capacity 8.75).
    return np.array([0.2, 0.4, 0.8])


RATE = 2.0


class TestAllocationStage:
    def test_conservation(self, mechanism, true_values):
        outcome = mechanism.run(true_values, RATE)
        assert outcome.loads.sum() == pytest.approx(RATE)

    def test_fast_machine_gets_more(self, mechanism, true_values):
        outcome = mechanism.run(true_values, RATE)
        assert outcome.loads[0] > outcome.loads[1] >= outcome.loads[2]

    def test_capacity_checked(self, mechanism):
        with pytest.raises(ValueError, match="capacity"):
            mechanism.run(np.array([1.0, 1.0]), 3.0)

    def test_leave_one_out_capacity_checked(self, mechanism):
        # mu = 10 and 1: removing the fast machine strands R = 2.
        with pytest.raises(ValueError, match="leave-one-out"):
            mechanism.run(np.array([0.1, 1.0]), 2.0)

    def test_work_curve_monotone_in_bid(self, mechanism, true_values):
        loads = [
            mechanism._load_of(0, bid, true_values, RATE)
            for bid in np.linspace(0.05, 1.5, 20)
        ]
        assert np.all(np.diff(loads) <= 1e-9)


class TestPayments:
    def test_excluded_machine_gets_nothing(self, mechanism, true_values):
        # Bidding above the exclusion level yields zero load, zero pay.
        bids = true_values.copy()
        bids[2] = 50.0
        outcome = mechanism.run(bids, RATE)
        assert outcome.loads[2] == pytest.approx(0.0, abs=1e-9)
        assert outcome.payments.payment[2] == pytest.approx(0.0, abs=1e-6)

    def test_payment_covers_declared_cost(self, mechanism, true_values):
        outcome = mechanism.run(true_values, RATE)
        declared_cost = true_values * outcome.loads
        assert np.all(outcome.payments.payment >= declared_cost - 1e-9)

    def test_bonus_positive_for_loaded_machines(self, mechanism, true_values):
        outcome = mechanism.run(true_values, RATE)
        loaded = outcome.loads > 1e-9
        assert np.all(outcome.payments.bonus[loaded] > 0.0)


class TestTruthfulness:
    @pytest.mark.parametrize("factor", [0.5, 0.8, 1.25, 2.0])
    def test_bid_deviations_never_gain(self, mechanism, true_values, factor):
        for agent in range(3):
            truthful = mechanism.utility_of_bid(
                agent, true_values[agent], true_values[agent], true_values, RATE
            )
            deviated = mechanism.utility_of_bid(
                agent, factor * true_values[agent], true_values[agent],
                true_values, RATE,
            )
            assert deviated <= truthful + 1e-6

    def test_voluntary_participation(self, mechanism, true_values):
        for agent in range(3):
            utility = mechanism.utility_of_bid(
                agent, true_values[agent], true_values[agent], true_values, RATE
            )
            assert utility >= -1e-9

    def test_first_order_condition_at_truth(self, mechanism, true_values):
        # Machine 0 carries load at the truthful profile; its utility
        # must be stationary there.
        h = 2e-4
        up = mechanism.utility_of_bid(0, true_values[0] + h, true_values[0], true_values, RATE)
        down = mechanism.utility_of_bid(0, true_values[0] - h, true_values[0], true_values, RATE)
        slope = (up - down) / (2 * h)
        assert abs(slope) < 2e-2
