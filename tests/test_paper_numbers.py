"""Headline paper-reproduction assertions (Section 4).

Every number the paper's prose reports that we could recover is pinned
here; EXPERIMENTS.md documents the paper-vs-measured comparison in
full.  These tests are the ground truth for "does the reproduction
still reproduce".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    figure1_data,
    figure2_data,
    figure6_data,
    figure6_truthful_structure,
    run_all_scenarios,
    scenario_by_name,
    table1_configuration,
)
from repro.mechanism import VerificationMechanism


class TestTable1:
    def test_sixteen_machines(self, config):
        assert config.cluster.n_machines == 16

    def test_speed_groups(self, config):
        t = config.cluster.true_values
        assert list(t[:2]) == [1.0, 1.0]
        assert list(t[2:5]) == [2.0, 2.0, 2.0]
        assert list(t[5:10]) == [5.0] * 5
        assert list(t[10:]) == [10.0] * 6

    def test_arrival_rate_is_twenty(self, config):
        assert config.arrival_rate == 20.0

    def test_aggregate_speed(self, config):
        # sum 1/t = 5.1 is what pins L* = 400/5.1 = 78.43
        assert config.cluster.total_inverse == pytest.approx(5.1)


class TestFigure1:
    """Total latency per experiment ('performance degradation')."""

    def test_true1_is_the_paper_optimum(self):
        data = figure1_data()
        assert data["True1"] == pytest.approx(78.43, abs=0.005)

    def test_low1_increase_is_about_11_percent(self):
        data = figure1_data()
        increase = data["Low1"] / data["True1"] - 1.0
        assert increase == pytest.approx(0.11, abs=0.005)

    def test_low2_increase_is_about_66_percent(self):
        data = figure1_data()
        increase = data["Low2"] / data["True1"] - 1.0
        assert increase == pytest.approx(0.66, abs=0.005)

    def test_true1_is_the_minimum_over_all_experiments(self):
        data = figure1_data()
        assert min(data.values()) == data["True1"]

    def test_high_orderings_match_the_prose(self):
        # High2 (full capacity) < High3 (faster than bid) < High1
        # (executes at bid) < High4 (slower than bid).
        data = figure1_data()
        assert data["High2"] < data["High3"] < data["High1"] < data["High4"]

    def test_slow_execution_alone_raises_latency(self):
        data = figure1_data()
        assert data["True2"] > data["True1"]


class TestFigure2:
    """Payment and utility of the manipulating computer C1."""

    def test_true1_gives_c1_its_highest_utility(self):
        data = figure2_data()
        utilities = {name: u for name, (_p, u) in data.items()}
        assert max(utilities, key=utilities.get) == "True1"

    def test_c1_utility_is_negative_in_low2(self):
        _, utility = figure2_data()["Low2"]
        assert utility < 0.0

    def test_low2_negative_payment_under_declared_compensation(self):
        # The paper's prose says Low2's *payment* is negative; that holds
        # for the declared-compensation variant (see DESIGN.md §2).
        data = figure2_data(mechanism=VerificationMechanism("declared"))
        payment, utility = data["Low2"]
        assert payment < 0.0
        assert utility < 0.0

    def test_high_experiments_pay_c1_less_than_true1(self):
        data = figure2_data()
        true1_payment = data["True1"][0]
        for name in ("High1", "High2", "High3", "High4"):
            assert data[name][0] < true1_payment

    def test_lying_always_lowers_c1_utility(self):
        data = figure2_data()
        true1_utility = data["True1"][1]
        for name, (_p, u) in data.items():
            if name != "True1":
                assert u < true1_utility


class TestFigures345:
    """Per-computer payment/utility for True1, High1 and Low1."""

    def test_low1_c1_utility_drops_about_45_percent(self):
        records = {r.scenario.name: r for r in run_all_scenarios()}
        drop = 1.0 - records["Low1"].c1_utility / records["True1"].c1_utility
        assert drop == pytest.approx(0.45, abs=0.025)

    def test_high1_c1_utility_drops_about_62_percent(self):
        records = {r.scenario.name: r for r in run_all_scenarios()}
        drop = 1.0 - records["High1"].c1_utility / records["True1"].c1_utility
        assert drop == pytest.approx(0.62, abs=0.025)

    def test_low1_other_computers_get_lower_utility_than_true1(self):
        # "The other computers (C2 - C16) obtain lower utilities" (Fig 5).
        records = {r.scenario.name: r for r in run_all_scenarios()}
        true1 = records["True1"].outcome.payments.utility
        low1 = records["Low1"].outcome.payments.utility
        assert np.all(low1[1:] < true1[1:])

    def test_high1_other_computers_get_higher_utility_than_true1(self):
        # "The other computers (C2 - C16) obtain higher utilities" (Fig 4).
        records = {r.scenario.name: r for r in run_all_scenarios()}
        true1 = records["True1"].outcome.payments.utility
        high1 = records["High1"].outcome.payments.utility
        assert np.all(high1[1:] > true1[1:])


class TestFigure6:
    """Payment structure / frugality."""

    def test_truthful_total_payment_at_most_2_5x_valuation(self):
        structure = figure6_data()["True1"]
        assert 1.0 <= structure["ratio"] <= 2.5

    def test_truthful_per_computer_ratio_within_band(self):
        ratios = figure6_truthful_structure()["ratio"]
        assert np.all(ratios >= 1.0)
        assert np.all(ratios <= 2.5)

    def test_payment_lower_bound_is_the_valuation(self):
        # VP means payment_i >= |valuation_i| for every truthful agent.
        structure = figure6_truthful_structure()
        assert np.all(structure["payment"] >= structure["valuation"] - 1e-9)


class TestTable2Definitions:
    def test_eight_experiments(self):
        assert len(run_all_scenarios()) == 8

    def test_low2_manipulation_matches_the_prose(self):
        s = scenario_by_name("Low2")
        # "bids 2 times less than its true value ... two times slower"
        assert s.bid_factor == 0.5
        assert s.execution_factor == 2.0

    def test_high1_manipulation_matches_the_prose(self):
        s = scenario_by_name("High1")
        # "bids three times higher ... execution value equal to the bid"
        assert s.bid_factor == 3.0
        assert s.execution_factor == 3.0


class TestProtocolComplexity:
    def test_o_n_messages(self):
        # "The total number of messages sent by the above protocol is O(n)."
        from repro.agents import TruthfulAgent
        from repro.protocol import run_protocol

        config = table1_configuration()
        agents = [TruthfulAgent(t) for t in config.cluster.true_values]
        result = run_protocol(
            agents, config.arrival_rate, duration=5.0,
            rng=np.random.default_rng(0),
        )
        n = config.cluster.n_machines
        assert result.network.total_messages == 5 * n
