"""Unit tests for the affine latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency import LinearLatencyModel
from repro.latency.affine import AffineLatencyModel


@pytest.fixture
def model() -> AffineLatencyModel:
    return AffineLatencyModel([0.5, 2.0], [1.0, 0.5])


class TestConstruction:
    def test_zero_intercept_allowed(self):
        AffineLatencyModel([0.0, 0.0], [1.0, 2.0])

    def test_negative_intercept_rejected(self):
        with pytest.raises(ValueError):
            AffineLatencyModel([-0.1], [1.0])

    def test_nonpositive_slope_rejected(self):
        with pytest.raises(ValueError):
            AffineLatencyModel([0.0], [0.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            AffineLatencyModel([0.0, 1.0], [1.0])


class TestEvaluation:
    def test_per_job(self, model):
        np.testing.assert_allclose(model.per_job([1.0, 2.0]), [1.5, 3.0])

    def test_marginal_matches_numerical_derivative(self, model):
        x = np.array([0.7, 1.9])
        h = 1e-7
        for i in range(2):
            up, down = x.copy(), x.copy()
            up[i] += h
            down[i] -= h
            numeric = (model.total(up)[i] - model.total(down)[i]) / (2 * h)
            assert model.marginal(x)[i] == pytest.approx(numeric, rel=1e-5)

    def test_marginal_inverse_clips_below_intercept(self, model):
        # Marginal at zero load is the intercept; below that, zero load.
        np.testing.assert_allclose(model.marginal_inverse(0.4), [0.0, 0.0])

    def test_marginal_inverse_round_trips(self, model):
        x = np.array([1.2, 0.3])
        g = model.marginal(x)
        np.testing.assert_allclose(model.marginal_inverse(g), x)

    def test_per_job_inverse(self, model):
        # Level 2.5: machine 0 carries (2.5-0.5)/1 = 2; machine 1 (2.5-2)/0.5 = 1.
        np.testing.assert_allclose(model.per_job_inverse(2.5), [2.0, 1.0])

    def test_per_job_inverse_clips(self, model):
        np.testing.assert_allclose(model.per_job_inverse(1.0), [0.5, 0.0])

    def test_unbounded_capacity(self, model):
        assert np.all(np.isinf(model.load_capacity()))


class TestReductions:
    def test_zero_intercepts_match_linear_model(self):
        affine = AffineLatencyModel([0.0, 0.0, 0.0], [1.0, 2.0, 5.0])
        linear = LinearLatencyModel([1.0, 2.0, 5.0])
        x = np.array([1.0, 2.0, 0.5])
        np.testing.assert_allclose(affine.per_job(x), linear.per_job(x))
        np.testing.assert_allclose(affine.marginal(x), linear.marginal(x))

    def test_without_intercepts(self, model):
        linear = model.without_intercepts()
        np.testing.assert_allclose(linear.t, model.slope)

    def test_restriction(self, model):
        sub = model.restricted_to(np.array([False, True]))
        assert sub.intercept[0] == 2.0
        assert sub.slope[0] == 0.5
