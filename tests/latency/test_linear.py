"""Unit tests for the linear latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency import LinearLatencyModel


@pytest.fixture
def model() -> LinearLatencyModel:
    return LinearLatencyModel([1.0, 2.0, 5.0])


class TestConstruction:
    def test_parameters_stored(self, model):
        np.testing.assert_allclose(model.t, [1.0, 2.0, 5.0])
        assert model.n_machines == 3
        assert len(model) == 3

    def test_parameters_read_only(self, model):
        with pytest.raises(ValueError):
            model.t[0] = 9.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LinearLatencyModel([1.0, 0.0])
        with pytest.raises(ValueError):
            LinearLatencyModel([-1.0])

    def test_processing_rates(self, model):
        np.testing.assert_allclose(model.processing_rates, [1.0, 0.5, 0.2])


class TestEvaluation:
    def test_per_job_is_linear(self, model):
        np.testing.assert_allclose(model.per_job([1.0, 1.0, 1.0]), [1.0, 2.0, 5.0])
        np.testing.assert_allclose(model.per_job([2.0, 3.0, 0.5]), [2.0, 6.0, 2.5])

    def test_total_is_quadratic(self, model):
        np.testing.assert_allclose(model.total([2.0, 3.0, 1.0]), [4.0, 18.0, 5.0])

    def test_total_latency_sums(self, model):
        assert model.total_latency([2.0, 3.0, 1.0]) == pytest.approx(27.0)

    def test_zero_load_gives_zero_latency(self, model):
        assert model.total_latency([0.0, 0.0, 0.0]) == 0.0

    def test_marginal(self, model):
        np.testing.assert_allclose(model.marginal([1.0, 1.0, 1.0]), [2.0, 4.0, 10.0])

    def test_marginal_matches_numerical_derivative(self, model):
        x = np.array([1.5, 0.7, 2.2])
        h = 1e-6
        for i in range(3):
            up = x.copy()
            up[i] += h
            down = x.copy()
            down[i] -= h
            numeric = (model.total(up)[i] - model.total(down)[i]) / (2 * h)
            assert model.marginal(x)[i] == pytest.approx(numeric, rel=1e-6)

    def test_marginal_inverse_round_trips(self, model):
        x = np.array([0.5, 1.25, 3.0])
        g = model.marginal(x)
        np.testing.assert_allclose(model.marginal_inverse(g), x)

    def test_marginal_inverse_rejects_negative_slope(self, model):
        with pytest.raises(ValueError):
            model.marginal_inverse(-1.0)

    def test_capacity_is_unbounded(self, model):
        assert np.all(np.isinf(model.load_capacity()))


class TestLoadValidation:
    def test_wrong_length_rejected(self, model):
        with pytest.raises(ValueError, match="machines"):
            model.per_job([1.0, 2.0])

    def test_negative_load_rejected(self, model):
        with pytest.raises(ValueError):
            model.per_job([1.0, -0.1, 0.0])


class TestUtilities:
    def test_restricted_to_subset(self, model):
        sub = model.restricted_to(np.array([True, False, True]))
        np.testing.assert_allclose(sub.t, [1.0, 5.0])

    def test_restricted_requires_nonempty(self, model):
        with pytest.raises(ValueError):
            model.restricted_to(np.zeros(3, dtype=bool))

    def test_restricted_mask_length_checked(self, model):
        with pytest.raises(ValueError):
            model.restricted_to(np.array([True, False]))

    def test_with_values(self, model):
        other = model.with_values([3.0, 4.0])
        np.testing.assert_allclose(other.t, [3.0, 4.0])

    def test_repr_mentions_class(self, model):
        assert "LinearLatencyModel" in repr(model)
