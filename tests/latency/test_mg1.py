"""Unit tests for the M/G/1 model and the paper's light-load linearisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency import LinearLatencyModel, MG1LatencyModel, MM1LatencyModel


@pytest.fixture
def model() -> MG1LatencyModel:
    # Exponential service at rates 2 and 4: E[S] = 1/mu, E[S^2] = 2/mu^2.
    return MG1LatencyModel.exponential([2.0, 4.0])


class TestConstruction:
    def test_second_moment_bound_enforced(self):
        # E[S^2] < E[S]^2 is impossible for any distribution.
        with pytest.raises(ValueError, match="second_moment"):
            MG1LatencyModel([1.0], [0.5])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MG1LatencyModel([1.0, 2.0], [2.0])

    def test_deterministic_constructor(self):
        model = MG1LatencyModel.deterministic([0.5])
        assert model.mean_service[0] == 0.5
        assert model.second_moment[0] == 0.25


class TestPollaczekKhinchine:
    def test_waiting_time_formula(self, model):
        # W_q = x E[S^2] / (2 (1 - x E[S]))
        x = np.array([1.0, 1.0])
        expected = x * model.second_moment / (2 * (1 - x * model.mean_service))
        np.testing.assert_allclose(model.per_job(x), expected)

    def test_exponential_service_matches_mm1_waiting(self, model):
        # For M/M/1, waiting = sojourn - service = 1/(mu-x) - 1/mu.
        mm1 = MM1LatencyModel([2.0, 4.0])
        x = np.array([0.7, 1.9])
        expected = mm1.per_job(x) - 1.0 / mm1.mu
        np.testing.assert_allclose(model.per_job(x), expected, rtol=1e-12)

    def test_zero_load_waits_nothing(self, model):
        np.testing.assert_allclose(model.per_job([0.0, 0.0]), [0.0, 0.0])

    def test_capacity_is_inverse_mean_service(self, model):
        np.testing.assert_allclose(model.load_capacity(), [2.0, 4.0])

    def test_marginal_matches_numerical_derivative(self, model):
        x = np.array([0.8, 2.1])
        h = 1e-7
        for i in range(2):
            up, down = x.copy(), x.copy()
            up[i] += h
            down[i] -= h
            numeric = (model.total(up)[i] - model.total(down)[i]) / (2 * h)
            assert model.marginal(x)[i] == pytest.approx(numeric, rel=1e-5)

    def test_marginal_inverse_round_trips(self, model):
        x = np.array([1.1, 2.9])
        g = model.marginal(x)
        np.testing.assert_allclose(model.marginal_inverse(g), x, rtol=1e-9)

    def test_marginal_inverse_handles_zero_slope(self, model):
        np.testing.assert_allclose(
            model.marginal_inverse(0.0), [0.0, 0.0], atol=1e-9
        )


class TestLightLoadLinearisation:
    """The paper's Section 2 justification of the linear model."""

    def test_slope_is_half_second_moment(self, model):
        linear = model.light_load_linearization()
        assert isinstance(linear, LinearLatencyModel)
        np.testing.assert_allclose(linear.t, model.second_moment / 2.0)

    def test_linearisation_converges_at_light_load(self, model):
        linear = model.light_load_linearization()
        for scale in (1e-2, 1e-3, 1e-4):
            x = np.full(2, scale)
            exact = model.per_job(x)
            approx = linear.per_job(x)
            # Relative error of the linearisation shrinks with the load.
            rel = np.abs(exact - approx) / exact
            assert np.all(rel < 2 * scale)

    def test_linearisation_underestimates_at_heavy_load(self, model):
        linear = model.light_load_linearization()
        x = np.array([1.8, 3.6])  # 90% utilisation
        assert np.all(linear.per_job(x) < model.per_job(x))


class TestRestriction:
    def test_restricted_to(self, model):
        sub = model.restricted_to(np.array([True, False]))
        assert sub.n_machines == 1
        assert sub.mean_service[0] == model.mean_service[0]
