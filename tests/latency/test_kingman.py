"""Unit tests for the Kingman G/G/1 model, validated three ways."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency import MG1LatencyModel, MM1LatencyModel
from repro.latency.kingman import KingmanLatencyModel
from repro.system.queueing import lindley_waits


class TestExactSpecialCases:
    def test_exact_for_mm1(self):
        # Kingman with c_a = c_s = 1 equals the exact M/M/1 *waiting*
        # time 1/(mu-x) - 1/mu.
        mu = np.array([2.0, 4.0])
        kingman = KingmanLatencyModel.mm1(mu)
        mm1 = MM1LatencyModel(mu)
        x = np.array([1.1, 2.7])
        expected = mm1.per_job(x) - 1.0 / mu
        np.testing.assert_allclose(kingman.per_job(x), expected, rtol=1e-12)

    def test_matches_pollaczek_khinchine_for_mg1(self):
        # Poisson arrivals (c_a = 1), deterministic service (c_s = 0).
        s = np.array([0.4, 0.25])
        kingman = KingmanLatencyModel(s, arrival_scv=1.0, service_scv=0.0)
        pk = MG1LatencyModel.deterministic(s)
        x = np.array([1.5, 2.0])
        np.testing.assert_allclose(kingman.per_job(x), pk.per_job(x), rtol=1e-12)

    def test_deterministic_everything_never_waits(self):
        # c_a = c_s = 0 (D/D/1 below capacity): zero waiting at any load.
        model = KingmanLatencyModel([0.5], arrival_scv=0.0, service_scv=0.0)
        assert model.per_job([1.5])[0] == 0.0


class TestHeavyTrafficValidation:
    def test_gg1_simulation_uniform_arrivals(self, rng):
        # G/G/1: uniform interarrivals (c_a^2 = 1/3), exponential
        # service (c_s^2 = 1), at 80% utilisation — the heavy-traffic
        # regime where Kingman is accurate.
        rate, mu = 1.6, 2.0
        n = 400_000
        interarrival = rng.uniform(0.0, 2.0 / rate, size=n - 1)
        service = rng.exponential(1.0 / mu, size=n)
        waits = lindley_waits(interarrival, service)
        simulated = float(waits[n // 5 :].mean())

        model = KingmanLatencyModel(
            [1.0 / mu], arrival_scv=1.0 / 3.0, service_scv=1.0
        )
        predicted = model.per_job([rate])[0]
        assert simulated == pytest.approx(predicted, rel=0.1)

    def test_lower_arrival_variability_means_less_waiting(self):
        poisson = KingmanLatencyModel([0.5], arrival_scv=1.0)
        clocked = KingmanLatencyModel([0.5], arrival_scv=0.0)
        assert clocked.per_job([1.5])[0] < poisson.per_job([1.5])[0]


class TestModelInterface:
    def test_marginal_matches_numerical_derivative(self):
        model = KingmanLatencyModel([0.4, 0.2], arrival_scv=0.5, service_scv=2.0)
        x = np.array([1.2, 3.0])
        h = 1e-7
        for i in range(2):
            up, down = x.copy(), x.copy()
            up[i] += h
            down[i] -= h
            numeric = (model.total(up)[i] - model.total(down)[i]) / (2 * h)
            assert model.marginal(x)[i] == pytest.approx(numeric, rel=1e-5)

    def test_marginal_inverse_round_trips(self):
        model = KingmanLatencyModel([0.4, 0.2], arrival_scv=0.5, service_scv=2.0)
        x = np.array([1.0, 2.5])
        g = model.marginal(x)
        np.testing.assert_allclose(model.marginal_inverse(g), x, rtol=1e-9)

    def test_capacity(self):
        model = KingmanLatencyModel([0.5, 0.25])
        np.testing.assert_allclose(model.load_capacity(), [2.0, 4.0])

    def test_water_filling_works_on_kingman(self):
        from repro.allocation import water_filling_allocation

        model = KingmanLatencyModel([0.5, 0.25], arrival_scv=1.0, service_scv=1.0)
        result = water_filling_allocation(model, 3.0)
        assert result.loads.sum() == pytest.approx(3.0)
        assert np.all(result.loads < model.load_capacity())

    def test_negative_scv_rejected(self):
        with pytest.raises(ValueError):
            KingmanLatencyModel([0.5], arrival_scv=-0.1)

    def test_restriction(self):
        model = KingmanLatencyModel([0.5, 0.25], arrival_scv=0.5)
        sub = model.restricted_to(np.array([True, False]))
        assert sub.mean_service[0] == 0.5
        assert sub.variability[0] == model.variability[0]
