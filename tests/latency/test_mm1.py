"""Unit tests for the M/M/1 latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency import MM1LatencyModel


@pytest.fixture
def model() -> MM1LatencyModel:
    return MM1LatencyModel([2.0, 4.0])


class TestConstruction:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            MM1LatencyModel([1.0, 0.0])

    def test_mu_read_only(self, model):
        with pytest.raises(ValueError):
            model.mu[0] = 1.0


class TestEvaluation:
    def test_sojourn_formula(self, model):
        np.testing.assert_allclose(model.per_job([1.0, 1.0]), [1.0, 1.0 / 3.0])

    def test_empty_queue_sojourn_is_service_time(self, model):
        np.testing.assert_allclose(model.per_job([0.0, 0.0]), [0.5, 0.25])

    def test_total_is_jobs_in_system(self, model):
        # Little's law: x / (mu - x)
        np.testing.assert_allclose(model.total([1.0, 2.0]), [1.0, 1.0])

    def test_latency_diverges_near_capacity(self, model):
        latency = model.per_job([2.0 - 1e-9, 0.0])[0]
        assert latency > 1e8

    def test_load_at_capacity_rejected(self, model):
        with pytest.raises(ValueError, match="capacity"):
            model.per_job([2.0, 0.0])

    def test_marginal_matches_numerical_derivative(self, model):
        x = np.array([0.9, 2.5])
        h = 1e-7
        for i in range(2):
            up, down = x.copy(), x.copy()
            up[i] += h
            down[i] -= h
            numeric = (model.total(up)[i] - model.total(down)[i]) / (2 * h)
            assert model.marginal(x)[i] == pytest.approx(numeric, rel=1e-5)

    def test_marginal_inverse_round_trips(self, model):
        x = np.array([1.3, 2.2])
        g = model.marginal(x)
        np.testing.assert_allclose(model.marginal_inverse(g), x, rtol=1e-12)

    def test_marginal_inverse_clips_at_zero(self, model):
        # At slope below the zero-load marginal (1/mu) the machine gets
        # no load.
        tiny = model.marginal_inverse(1e-6)
        np.testing.assert_allclose(tiny, [0.0, 0.0])

    def test_marginal_inverse_rejects_nonpositive(self, model):
        with pytest.raises(ValueError):
            model.marginal_inverse(0.0)

    def test_capacity_equals_mu(self, model):
        np.testing.assert_allclose(model.load_capacity(), [2.0, 4.0])


class TestUtilities:
    def test_utilisation(self, model):
        np.testing.assert_allclose(model.utilisation([1.0, 1.0]), [0.5, 0.25])

    def test_restriction(self, model):
        sub = model.restricted_to(np.array([False, True]))
        np.testing.assert_allclose(sub.mu, [4.0])

    def test_with_values(self, model):
        np.testing.assert_allclose(model.with_values([8.0]).mu, [8.0])
