"""Tests for the shared LatencyModel base behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency import (
    AffineLatencyModel,
    KingmanLatencyModel,
    LinearLatencyModel,
    MG1LatencyModel,
    MM1LatencyModel,
)

ALL_MODELS = [
    LinearLatencyModel([1.0, 2.0]),
    AffineLatencyModel([0.5, 1.0], [1.0, 2.0]),
    MM1LatencyModel([4.0, 8.0]),
    MG1LatencyModel.exponential([4.0, 8.0]),
    KingmanLatencyModel([0.25, 0.125]),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestSharedContract:
    def test_total_is_load_times_per_job(self, model):
        x = np.array([0.5, 1.0])
        np.testing.assert_allclose(
            model.total(x), x * model.per_job(x), rtol=1e-12
        )

    def test_total_latency_is_the_sum(self, model):
        x = np.array([0.5, 1.0])
        assert model.total_latency(x) == pytest.approx(float(model.total(x).sum()))

    def test_len_matches_machines(self, model):
        assert len(model) == model.n_machines == 2

    def test_wrong_length_rejected(self, model):
        with pytest.raises(ValueError, match="machines"):
            model.per_job(np.array([1.0, 1.0, 1.0]))

    def test_negative_load_rejected(self, model):
        with pytest.raises(ValueError):
            model.per_job(np.array([-0.1, 0.5]))

    def test_nan_load_rejected(self, model):
        with pytest.raises(ValueError):
            model.per_job(np.array([np.nan, 0.5]))

    def test_marginal_nonnegative_and_increasing(self, model):
        low = model.marginal(np.array([0.1, 0.1]))
        high = model.marginal(np.array([0.5, 0.5]))
        assert np.all(low >= -1e-12)
        assert np.all(high >= low - 1e-12)

    def test_zero_load_is_feasible(self, model):
        # Every model must evaluate cleanly at the empty allocation.
        assert model.total_latency(np.zeros(2)) == pytest.approx(0.0)

    def test_capacity_violation_names_the_machine(self, model):
        cap = model.load_capacity()
        if not np.all(np.isfinite(cap)):
            pytest.skip("unbounded capacity")
        bad = np.array([cap[0], 0.0])
        with pytest.raises(ValueError, match="machine 0"):
            model.per_job(bad)

    def test_repr_names_the_class(self, model):
        assert type(model).__name__ in repr(model)
