"""Cross-module integration stories.

Each test wires several subsystems together the way a user would and
asserts the end-to-end invariant — the seams the unit tests cannot see.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BiddingGame,
    ManipulativeAgent,
    TruthfulAgent,
    VerificationMechanism,
    paper_cluster,
)
from repro.analysis.landscape import utility_landscape
from repro.distributed import DistributedVerificationMechanism, tree_overlay
from repro.protocol import run_protocol


class TestGameThenProtocol:
    """Best-response bidding converges to truth; the protocol run at the
    equilibrium profile achieves the optimum end to end."""

    def test_equilibrium_bids_yield_optimal_protocol_round(self):
        t = paper_cluster().true_values[:6]
        game = BiddingGame(VerificationMechanism(), t, 10.0)
        trace = game.run(max_rounds=3)
        assert trace.converged

        agents = [TruthfulAgent(value) for value in trace.final_bids]
        result = run_protocol(
            agents, 10.0, duration=600.0, rng=np.random.default_rng(4)
        )
        optimum = 10.0**2 / float(np.sum(1.0 / t))
        assert result.outcome.realised_latency == pytest.approx(optimum, rel=0.05)


class TestLandscapeFastPathAgreement:
    """The vectorised landscape fast path must equal the scalar loop."""

    def test_fast_and_slow_paths_identical(self, small_true_values):
        mechanism = VerificationMechanism()
        bid_factors = np.array([0.5, 1.0, 2.0])
        exec_factors = np.array([1.0, 1.5])

        fast = utility_landscape(
            mechanism, small_true_values, 10.0, 0,
            bid_factors=bid_factors, exec_factors=exec_factors,
        )

        # Recompute by hand with scalar mechanism runs.
        expected = np.empty((3, 2))
        for i, bf in enumerate(bid_factors):
            for j, ef in enumerate(exec_factors):
                bids = small_true_values.copy()
                bids[0] *= bf
                execs = small_true_values.copy()
                execs[0] *= ef
                outcome = mechanism.run(bids, 10.0, execs)
                expected[i, j] = float(outcome.payments.utility[0])
        np.testing.assert_allclose(fast.utilities, expected, rtol=1e-12)

    def test_declared_variant_uses_its_own_mode(self, small_true_values):
        fast = utility_landscape(
            VerificationMechanism("declared"), small_true_values, 10.0, 0,
            bid_factors=np.array([1.0, 2.0]),
            exec_factors=np.array([1.0]),
        )
        # Declared compensation makes overbidding profitable: the 2x
        # bid beats truth, which would be false under observed mode.
        assert fast.utilities[1, 0] > fast.utilities[0, 0]


class TestProtocolFeedsDistributedMechanism:
    """Verification estimates from a simulated round drive the
    distributed payment computation; the result matches the
    centralised outcome computed from the same estimates."""

    def test_estimates_flow_into_distributed_payments(self):
        cluster = paper_cluster()
        agents = [TruthfulAgent(t) for t in cluster.true_values]
        agents[0] = ManipulativeAgent(1.0, bid_factor=0.5, execution_factor=2.0)
        result = run_protocol(
            agents, 20.0, duration=500.0, rng=np.random.default_rng(9)
        )

        bids = np.array([a.bid() for a in agents])
        estimates = result.estimated_execution_values
        distributed = DistributedVerificationMechanism(tree_overlay(16)).run(
            bids, 20.0, estimates
        )
        np.testing.assert_allclose(
            distributed.outcome.payments.payment,
            result.outcome.payments.payment,
            rtol=1e-9,
        )


class TestTraceReplayThroughProtocolMachinery:
    """A recorded workload replays to identical machine statistics."""

    def test_replayed_trace_gives_identical_sojourns(self, tmp_path):
        from repro.system import (
            LinearLatencyMachine,
            PoissonWorkload,
            Simulator,
            load_trace,
            save_trace,
        )

        jobs = PoissonWorkload(4.0, np.random.default_rng(2)).generate(50.0)
        save_trace(jobs, tmp_path / "trace.json")
        replayed = load_trace(tmp_path / "trace.json")

        def run(stream):
            sim = Simulator()
            machine = LinearLatencyMachine(
                "C1", 2.0, np.random.default_rng(0),
                service_sampler=lambda mean, r: mean,
            )
            machine.configure(4.0)
            for job in stream:
                sim.schedule_at(
                    job.arrival_time, lambda s, j=job: machine.submit(s, j)
                )
            sim.run()
            return machine.sojourn_times

        assert run(jobs) == run(replayed)
