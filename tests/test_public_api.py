"""API-surface integrity: exports resolve, are documented, and round-trip.

These tests keep the public API honest as the package grows: every
name in ``__all__`` must exist, every public callable and class must
carry a docstring, and the subpackage exports must be reachable from
their documented locations.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.latency",
    "repro.allocation",
    "repro.mechanism",
    "repro.agents",
    "repro.system",
    "repro.protocol",
    "repro.resilience",
    "repro.observability",
    "repro.distributed",
    "repro.dynamic",
    "repro.experiments",
    "repro.analysis",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_objects_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_methods_documented(self):
        from repro import VerificationMechanism

        for name, member in inspect.getmembers(VerificationMechanism):
            if name.startswith("_") or not callable(member):
                continue
            assert (member.__doc__ or "").strip(), f"undocumented method {name}"


class TestReadmeQuickstartRuns:
    def test_quickstart_snippet(self):
        # The exact code from README's Quickstart section.
        from repro import VerificationMechanism, paper_cluster

        cluster = paper_cluster()
        mech = VerificationMechanism()
        outcome = mech.run(cluster.true_values, arrival_rate=20.0)
        assert round(outcome.realised_latency, 2) == 78.43
        assert round(outcome.frugality_ratio, 2) == 2.14

        bids = cluster.true_values.copy()
        bids[0] = 0.5
        execs = cluster.true_values.copy()
        execs[0] = 2.0
        lied = mech.run(bids, 20.0, execs, true_values=cluster.true_values)
        assert round(lied.realised_latency, 2) == 130.07
        assert round(float(lied.payments.utility[0]), 1) == -32.5

    def test_package_docstring_example(self):
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_module_doctests(self):
        import doctest

        from repro.allocation import pr as pr_module
        from repro.latency import linear as linear_module
        from repro.mechanism import compensation_bonus as cb_module

        for module in (pr_module, linear_module, cb_module):
            results = doctest.testmod(module, verbose=False)
            assert results.failed == 0, module.__name__
