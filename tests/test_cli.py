"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> str:
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return captured.out


class TestTables:
    def test_table1_lists_groups(self, capsys):
        out = run_cli(capsys, "table1")
        assert "C1 - C2" in out
        assert "20.00" in out  # arrival rate

    def test_table2_lists_all_experiments(self, capsys):
        out = run_cli(capsys, "table2")
        for name in ("True1", "High4", "Low2"):
            assert name in out


class TestFigures:
    @pytest.mark.parametrize("number", ["1", "2", "3", "4", "5", "6"])
    def test_every_figure_renders(self, capsys, number):
        out = run_cli(capsys, "figure", number)
        assert f"Figure {number}" in out

    def test_figure1_contains_optimum(self, capsys):
        out = run_cli(capsys, "figure", "1")
        assert "78.43" in out

    def test_out_of_range_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "7"])


class TestAudit:
    def test_observed_mechanism_is_truthful(self, capsys):
        out = run_cli(capsys, "audit", "--machines", "4")
        assert "yes" in out

    def test_declared_mechanism_flagged(self, capsys):
        out = run_cli(capsys, "audit", "--variant", "declared", "--machines", "4")
        assert "NO" in out

    @pytest.mark.parametrize("variant", ["vcg", "archer-tardos"])
    def test_baselines_audit_cleanly(self, capsys, variant):
        out = run_cli(capsys, "audit", "--variant", variant, "--machines", "4")
        assert "yes" in out

    def test_audit_accepts_cluster_config_file(self, capsys, tmp_path, rng):
        from repro.system import random_cluster, save_cluster

        path = tmp_path / "cluster.json"
        save_cluster(random_cluster(5, rng), path)
        out = run_cli(
            capsys, "audit", "--config", str(path), "--machines", "5"
        )
        assert "yes" in out


class TestProtocol:
    def test_truthful_round(self, capsys):
        out = run_cli(capsys, "protocol", "--duration", "20")
        assert "control messages" in out
        assert "80" in out  # 5n for n=16

    def test_liar_round_shows_negative_utility(self, capsys):
        out = run_cli(capsys, "protocol", "--liar", "low2", "--duration", "150")
        assert "C1 utility" in out
        # utility column carries a minus sign for low2
        utility_line = next(l for l in out.splitlines() if "C1 utility" in l)
        assert "-" in utility_line.split()[-1]

    def test_lossy_round_completes(self, capsys):
        out = run_cli(
            capsys, "protocol", "--duration", "15", "--drop", "0.3"
        )
        messages_line = next(
            l for l in out.splitlines() if "control messages" in l
        )
        assert messages_line.split()[-1] == "80"  # exactly-once payloads


class TestAnalysisCommands:
    def test_multi_liar(self, capsys):
        out = run_cli(capsys, "multi-liar", "--max-liars", "3")
        assert "degradation %" in out
        assert "65.8" in out

    def test_poa_default_is_pigou(self, capsys):
        out = run_cli(capsys, "poa")
        assert "1.3333" in out

    def test_poa_bad_model_errors_cleanly(self, capsys):
        code = main(["poa", "--intercepts", "-1", "--slopes", "1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err


class TestLandscape:
    def test_observed_landscape_peaks_at_truth(self, capsys):
        out = run_cli(capsys, "landscape")
        assert "max at bid 1x, execution 1x" in out
        assert "exec\\bid" in out

    def test_declared_landscape_peaks_above_truth(self, capsys):
        out = run_cli(capsys, "landscape", "--variant", "declared")
        header = out.splitlines()[0]
        assert "max at bid 1x" not in header

    def test_agent_selectable(self, capsys):
        out = run_cli(capsys, "landscape", "--agent", "5")
        assert "machine C6" in out


class TestResilience:
    def test_chaos_campaign_runs_clean(self, capsys):
        out = run_cli(
            capsys, "resilience", "--rounds", "6", "--machines", "6",
            "--seed", "1",
        )
        assert "Chaos campaign" in out
        assert "invariant violations" in out
        assert "INVARIANT VIOLATIONS" not in out  # none occurred

    def test_keep_going_flag_accepted(self, capsys):
        out = run_cli(
            capsys, "resilience", "--rounds", "3", "--machines", "4",
            "--seed", "2", "--keep-going",
        )
        assert "rounds driven" in out


class TestMetrics:
    def test_text_report_has_all_sections(self, capsys):
        out = run_cli(
            capsys, "metrics", "--rounds", "2", "--machines", "4",
            "--seed", "1",
        )
        assert "Span timings" in out
        assert "supervisor.round" in out
        assert "Counters" in out
        assert "protocol.phase_transitions" in out

    def test_json_report_parses_with_expected_sections(self, capsys):
        import json

        out = run_cli(
            capsys, "metrics", "--rounds", "2", "--machines", "4",
            "--seed", "1", "--json",
        )
        snapshot = json.loads(out)
        for section in ("counters", "gauges", "histograms", "spans"):
            assert section in snapshot
        assert "supervisor.round" in snapshot["spans"]
        assert snapshot["spans"]["supervisor.round"]["count"] == 2

    def test_chaos_campaign_records_fault_counters(self, capsys):
        import json

        out = run_cli(
            capsys, "metrics", "--rounds", "6", "--machines", "6",
            "--seed", "1", "--chaos", "--json",
        )
        snapshot = json.loads(out)
        assert "chaos.round" in snapshot["spans"]
        names = {c["name"] for c in snapshot["counters"]}
        assert "chaos.faults_injected" in names

    def test_trace_export_writes_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "spans.jsonl"
        out = run_cli(
            capsys, "metrics", "--rounds", "1", "--machines", "4",
            "--seed", "0", "--trace", str(path),
        )
        assert str(path) in out
        lines = path.read_text().splitlines()
        assert lines, "trace export produced no spans"
        names = {json.loads(line)["name"] for line in lines}
        assert "supervisor.round" in names


class TestCampaign:
    @pytest.mark.parametrize(
        "argv",
        [["campaign", "--seeds", "-1"], ["campaign", "--duration", "0"]],
    )
    def test_bad_arguments_error_cleanly(self, capsys, argv):
        code = main(argv)
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_cold_run_reports_misses_and_figure1(self, capsys, tmp_path):
        out = run_cli(
            capsys, "campaign", "--cache-dir", str(tmp_path / "cache"),
        )
        assert "0 / 8" in out          # hits / misses
        assert "78.43" in out          # True1 optimum
        assert "Low2" in out

    def test_warm_run_is_all_hits(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run_cli(capsys, "campaign", "--cache-dir", cache)
        out = run_cli(capsys, "campaign", "--cache-dir", cache)
        assert "8 / 0" in out
        assert "100.0%" in out

    def test_no_resume_recomputes(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run_cli(capsys, "campaign", "--cache-dir", cache)
        out = run_cli(capsys, "campaign", "--cache-dir", cache, "--no-resume")
        assert "0 / 8" in out
        assert "refresh" in out

    def test_no_cache_runs_without_directory(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = run_cli(capsys, "campaign", "--no-cache")
        assert "disabled" in out
        assert not (tmp_path / ".repro-cache").exists()

    def test_seeds_add_protocol_units(self, capsys, tmp_path):
        out = run_cli(
            capsys, "campaign", "--cache-dir", str(tmp_path / "c"),
            "--seeds", "1", "--duration", "20",
        )
        assert "0 / 16" in out

    def test_json_payloads_parse(self, capsys, tmp_path):
        import json

        out = run_cli(
            capsys, "campaign", "--no-cache", "--json",
        )
        data = json.loads(out)
        assert data["n_units"] == 8
        assert len(data["payloads"]) == 8
        assert len(data["keys"][0]) == 64
        assert round(data["payloads"][0]["realised_latency"], 2) == 78.43

    def test_trace_exports_worker_spans(self, capsys, tmp_path):
        import json

        # Worker-side campaign.unit spans are a per-unit-path contract;
        # --fuse off keeps every unit on that path.
        path = tmp_path / "spans.jsonl"
        out = run_cli(
            capsys, "campaign", "--no-cache", "--fuse", "off",
            "--trace", str(path),
        )
        assert str(path) in out
        lines = path.read_text().splitlines()
        assert len(lines) == 8
        assert json.loads(lines[0])["name"] == "campaign.unit"

    def test_metrics_campaign_mode_shows_cache_counters(self, capsys):
        import json

        out = run_cli(
            capsys, "metrics", "--campaign", "--duration", "20", "--json",
        )
        snapshot = json.loads(out)
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert counters["campaign.cache.hits"] == 16
        assert counters["campaign.cache.misses"] == 16

    def test_reproduce_accepts_engine_flags(self, capsys, tmp_path):
        out = run_cli(
            capsys, "reproduce",
            "--output", str(tmp_path / "bundle"),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert "all claims PASS" in out
        assert (tmp_path / "cache").is_dir()


class TestTournament:
    def test_standings_list_all_three_mechanisms(self, capsys):
        out = run_cli(capsys, "tournament")
        assert "Tournament standings" in out
        for mechanism in ("observed", "vcg", "archer-tardos"):
            assert mechanism in out

    def test_collusion_rows_lead_the_manipulation_table(self, capsys):
        out = run_cli(capsys, "tournament", "--top", "3")
        assert "collude(0,2)" in out
        assert "yes" in out          # profitable only under verification

    def test_json_exports_the_full_result(self, capsys):
        import json

        out = run_cli(capsys, "tournament", "--json", "--no-dynamics")
        data = json.loads(out)
        assert data["schema_version"] == 1
        assert len(data["standings"]) == 3
        assert data["equilibrium"] == []
        assert {r["mechanism"] for r in data["rows"]} == {
            "observed", "vcg", "archer-tardos"
        }

    def test_cache_dir_serves_the_second_run(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        first = run_cli(capsys, "tournament", "--cache-dir", cache, "--json")
        second = run_cli(capsys, "tournament", "--cache-dir", cache, "--json")
        assert first == second


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_python_dash_m_entry(self):
        import repro.__main__  # noqa: F401  (import must not execute main)
