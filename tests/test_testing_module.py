"""Unit tests for the public invariant checkers (repro.testing)."""

from __future__ import annotations

import doctest

import numpy as np
import pytest

import repro.testing as rt
from repro.allocation import pr_allocation
from repro.mechanism import VCGMechanism, VerificationMechanism
from repro.types import AllocationResult


class TestFeasibilityChecker:
    def test_accepts_pr_allocation(self):
        rt.assert_feasible_allocation(pr_allocation([1.0, 2.0], 5.0))

    def test_rejects_conservation_violation(self):
        broken = AllocationResult(
            loads=np.array([1.0, 1.0]),
            arrival_rate=5.0,
            bids=np.array([1.0, 1.0]),
            total_latency=2.0,
        )
        with pytest.raises(AssertionError, match="conservation"):
            rt.assert_feasible_allocation(broken)

    def test_rejects_negative_load(self):
        broken = AllocationResult(
            loads=np.array([6.0, -1.0]),
            arrival_rate=5.0,
            bids=np.array([1.0, 1.0]),
            total_latency=37.0,
        )
        with pytest.raises(AssertionError, match="positivity"):
            rt.assert_feasible_allocation(broken)


class TestPaymentIdentityChecker:
    def test_accepts_verification_outcome(self, mechanism, small_true_values):
        outcome = mechanism.run(small_true_values, 10.0, small_true_values)
        rt.assert_payment_identities(outcome)

    def test_accepts_vcg_outcome(self, small_true_values):
        outcome = VCGMechanism().run(small_true_values, 10.0)
        rt.assert_payment_identities(outcome)

    def test_bonus_formula_checked_for_verification(self, small_true_values):
        # A manipulated metadata tag must make the bonus check run and
        # fail on a non-Definition-3.3 payment rule.
        from repro.types import MechanismOutcome, PaymentResult

        base = VerificationMechanism().run(small_true_values, 10.0)
        tampered = MechanismOutcome(
            allocation=base.allocation,
            payments=PaymentResult(
                compensation=base.payments.compensation.copy(),
                bonus=base.payments.bonus + 1.0,  # wrong bonuses
                valuation=base.payments.valuation.copy(),
            ),
            execution_values=base.execution_values,
            metadata={"mechanism": "VerificationMechanism"},
        )
        with pytest.raises(AssertionError, match="bonus"):
            rt.assert_payment_identities(tampered)


class TestTheoremCheckers:
    def test_vp_passes_for_paper_mechanism(self, cluster):
        rt.assert_voluntary_participation(
            VerificationMechanism(), cluster.true_values, 20.0
        )

    def test_truthfulness_passes_for_paper_mechanism(self, small_true_values):
        rt.assert_truthful_on_grid(
            VerificationMechanism(), small_true_values, 10.0
        )

    def test_truthfulness_fails_for_declared_variant(self, small_true_values):
        with pytest.raises(AssertionError, match="truthfulness violated"):
            rt.assert_truthful_on_grid(
                VerificationMechanism("declared"), small_true_values, 10.0
            )


class TestDocs:
    def test_module_doctest(self):
        results = doctest.testmod(rt, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1
