"""Property-based optimality tests for the general allocator (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.allocation import water_filling_allocation
from repro.latency import (
    AffineLatencyModel,
    KingmanLatencyModel,
    MM1LatencyModel,
)

service_rates = arrays(
    np.float64,
    st.integers(min_value=2, max_value=10),
    elements=st.floats(min_value=0.5, max_value=20.0),
)


def _perturb_and_compare(model, result, rng, trials=25):
    """Moving mass between two machines must never reduce the latency."""
    loads = result.loads
    cap = model.load_capacity()
    n = loads.size
    for _ in range(trials):
        i, j = rng.integers(0, n, size=2)
        if i == j or loads[i] <= 0:
            continue
        eps = float(rng.uniform(0.0, 1.0)) * loads[i] * 0.5
        candidate = loads.copy()
        candidate[i] -= eps
        candidate[j] += eps
        if candidate[j] >= cap[j] * (1 - 1e-9):
            continue
        assert model.total_latency(candidate) >= result.total_latency * (1 - 1e-7)


class TestMM1Optimality:
    @settings(max_examples=60)
    @given(
        mu=service_rates,
        utilisation=st.floats(min_value=0.05, max_value=0.9),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_no_pairwise_improvement(self, mu, utilisation, seed):
        model = MM1LatencyModel(mu)
        rate = utilisation * float(mu.sum())
        result = water_filling_allocation(model, rate)
        assert result.loads.sum() == pytest.approx(rate, rel=1e-8)
        _perturb_and_compare(model, result, np.random.default_rng(seed))


class TestKingmanOptimality:
    @settings(max_examples=60)
    @given(
        mu=service_rates,
        utilisation=st.floats(min_value=0.05, max_value=0.9),
        ca2=st.floats(min_value=0.1, max_value=3.0),
        cs2=st.floats(min_value=0.1, max_value=3.0),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_no_pairwise_improvement(self, mu, utilisation, ca2, cs2, seed):
        model = KingmanLatencyModel(1.0 / mu, arrival_scv=ca2, service_scv=cs2)
        rate = utilisation * float(mu.sum())
        result = water_filling_allocation(model, rate)
        assert result.loads.sum() == pytest.approx(rate, rel=1e-8)
        _perturb_and_compare(model, result, np.random.default_rng(seed))


class TestAffineOptimality:
    @settings(max_examples=60)
    @given(
        slopes=service_rates,
        intercept_scale=st.floats(min_value=0.0, max_value=5.0),
        rate=st.floats(min_value=0.1, max_value=50.0),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_no_pairwise_improvement(self, slopes, intercept_scale, rate, seed):
        rng = np.random.default_rng(seed)
        intercepts = rng.uniform(0.0, intercept_scale, size=slopes.size)
        model = AffineLatencyModel(intercepts, slopes)
        result = water_filling_allocation(model, rate)
        assert result.loads.sum() == pytest.approx(rate, rel=1e-8)
        _perturb_and_compare(model, result, rng)

    @settings(max_examples=60)
    @given(slopes=service_rates, rate=st.floats(min_value=0.1, max_value=50.0))
    def test_kkt_water_level_on_supported_machines(self, slopes, rate):
        # Every machine with positive load sits at the same marginal.
        model = AffineLatencyModel(np.zeros(slopes.size), slopes)
        result = water_filling_allocation(model, rate)
        marginals = model.marginal(result.loads)
        supported = result.loads > 1e-9 * rate
        assume(int(supported.sum()) > 1)
        spread = np.ptp(marginals[supported]) / marginals[supported].mean()
        assert spread < 1e-6
