"""Property-based guarantees for nonstationary arrival schedules.

The thinning sampler (Lewis–Shedler) must be an *exact* draw from the
inhomogeneous Poisson process on every window: counts concentrate
around the rate integral, every accepted time stays inside its window,
and a fixed seed pins the whole stream — the horizon-fused engine's
bit-parity contract rides on that last property.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.workload import (
    ConstantSchedule,
    PiecewiseConstantSchedule,
    SinusoidalSchedule,
)

rates = st.floats(min_value=0.1, max_value=50.0)
seeds = st.integers(0, 2**31)


def piecewise(rate_list):
    breakpoints = [float(25.0 * i) for i in range(len(rate_list))]
    return PiecewiseConstantSchedule(breakpoints, rate_list)


schedules = st.one_of(
    rates.map(ConstantSchedule),
    st.lists(rates, min_size=1, max_size=5).map(piecewise),
    st.tuples(
        rates,
        st.floats(min_value=0.0, max_value=0.9),
        st.floats(min_value=5.0, max_value=500.0),
    ).map(lambda t: SinusoidalSchedule(t[0], amplitude=t[1], period=t[2])),
)


class TestCountsTrackTheIntegral:
    @settings(max_examples=60, deadline=None)
    @given(schedule=schedules, seed=seeds)
    def test_count_concentrates_around_the_rate_integral(
        self, schedule, seed
    ):
        # One window long enough that the law of large numbers bites:
        # a Poisson(L) count stays within 5*sqrt(L) + 10 of L except
        # with negligible probability (<1e-6), so a violation means the
        # sampler's intensity is wrong, not bad luck.
        duration = 200.0
        expected = schedule.integral(0.0, duration)
        times = schedule.generate_times(
            np.random.default_rng(seed), 0.0, duration
        )
        assert abs(times.size - expected) <= 5.0 * np.sqrt(expected) + 10.0

    @settings(max_examples=60, deadline=None)
    @given(schedule=schedules, start=st.floats(0.0, 300.0))
    def test_integral_is_additive_and_mean_rate_bounded(
        self, schedule, start
    ):
        mid, end = start + 17.0, start + 40.0
        whole = schedule.integral(start, end)
        split = schedule.integral(start, mid) + schedule.integral(mid, end)
        assert np.isclose(whole, split, rtol=1e-9, atol=1e-9)
        mean = schedule.mean_rate(start, end)
        assert 0.0 < mean <= schedule.max_rate(start, end) + 1e-12


class TestThinningStaysInsideTheWindow:
    @settings(max_examples=60, deadline=None)
    @given(
        schedule=schedules,
        seed=seeds,
        start=st.floats(0.0, 500.0),
        duration=st.floats(min_value=0.5, max_value=80.0),
    )
    def test_times_sorted_and_inside_the_window(
        self, schedule, seed, start, duration
    ):
        times = schedule.generate_times(
            np.random.default_rng(seed), start, duration
        )
        assert np.all(times >= 0.0)
        assert np.all(times < duration)
        assert np.all(np.diff(times) >= 0.0)

    @settings(max_examples=30, deadline=None)
    @given(schedule=schedules, seed=seeds)
    def test_horizon_times_partition_like_per_window_calls(
        self, schedule, seed
    ):
        # horizon_times must consume the stream window by window —
        # exactly what a sequential supervisor would draw round by
        # round. This equality is the schedule half of the fused
        # engine's bit-parity contract.
        rounds, duration = 4, 20.0
        fused = schedule.horizon_times(
            np.random.default_rng(seed), 0.0, duration, rounds
        )
        rng = np.random.default_rng(seed)
        sequential = [
            schedule.generate_times(rng, r * duration, duration)
            for r in range(rounds)
        ]
        assert len(fused) == rounds
        for left, right in zip(fused, sequential):
            assert np.array_equal(left, right)


class TestSeedReproducibility:
    @settings(max_examples=60, deadline=None)
    @given(
        rate_list=st.lists(rates, min_size=1, max_size=5),
        seed=seeds,
        duration=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_piecewise_same_seed_same_stream(self, rate_list, seed, duration):
        schedule = piecewise(rate_list)
        first = schedule.generate_times(
            np.random.default_rng(seed), 0.0, duration
        )
        second = schedule.generate_times(
            np.random.default_rng(seed), 0.0, duration
        )
        assert np.array_equal(first, second)

    @settings(max_examples=40, deadline=None)
    @given(rate=rates, seed=seeds)
    def test_constant_schedule_matches_the_plain_poisson_law(
        self, rate, seed
    ):
        # At a tight bound the thinning accepts every candidate, so the
        # count is exactly the dominating Poisson draw.
        duration = 50.0
        times = ConstantSchedule(rate).generate_times(
            np.random.default_rng(seed), 0.0, duration
        )
        expected = int(np.random.default_rng(seed).poisson(rate * duration))
        assert times.size == expected
