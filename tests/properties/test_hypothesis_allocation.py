"""Property-based tests for the allocation layer (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.allocation import (
    optimal_latency_excluding_each,
    optimal_total_latency,
    pr_loads,
    water_filling_allocation,
)
from repro.latency import LinearLatencyModel

# Latency slopes spanning four orders of magnitude; bounded away from
# zero/inf so float64 arithmetic stays well conditioned.
slopes = arrays(
    np.float64,
    st.integers(min_value=1, max_value=24),
    elements=st.floats(min_value=0.01, max_value=100.0),
)
rates = st.floats(min_value=0.01, max_value=1000.0)


class TestPrInvariants:
    @given(t=slopes, rate=rates)
    def test_conservation(self, t, rate):
        assert pr_loads(t, rate).sum() == pytest.approx(rate, rel=1e-9)

    @given(t=slopes, rate=rates)
    def test_positivity(self, t, rate):
        assert np.all(pr_loads(t, rate) > 0.0)

    @given(t=slopes, rate=rates)
    def test_latency_ordering_matches_speed_ordering(self, t, rate):
        # Faster machines (smaller t) always get at least as much load.
        loads = pr_loads(t, rate)
        order = np.argsort(t)
        assert np.all(np.diff(loads[order]) <= 1e-12 * rate)

    @given(t=slopes, rate=rates)
    def test_closed_form_latency_matches_direct_evaluation(self, t, rate):
        loads = pr_loads(t, rate)
        direct = float(np.dot(t, loads**2))
        assert optimal_total_latency(t, rate) == pytest.approx(direct, rel=1e-9)

    @given(t=slopes, rate=rates, data=st.data())
    def test_optimality_against_random_perturbations(self, t, rate, data):
        # Shifting mass between any two machines cannot reduce L.
        loads = pr_loads(t, rate)
        best = optimal_total_latency(t, rate)
        if t.size < 2:
            return
        i = data.draw(st.integers(0, t.size - 1))
        j = data.draw(st.integers(0, t.size - 1))
        if i == j:
            return
        eps = data.draw(st.floats(0.0, 1.0)) * loads[i]
        perturbed = loads.copy()
        perturbed[i] -= eps
        perturbed[j] += eps
        assert float(np.dot(t, perturbed**2)) >= best * (1 - 1e-9)

    @given(t=slopes, rate=rates, scale=st.floats(min_value=0.1, max_value=10.0))
    def test_slope_scale_invariance(self, t, rate, scale):
        np.testing.assert_allclose(
            pr_loads(t, rate), pr_loads(scale * t, rate), rtol=1e-9
        )

    @given(t=slopes, rate=rates)
    def test_rate_homogeneity(self, t, rate):
        np.testing.assert_allclose(
            2.0 * pr_loads(t, rate), pr_loads(t, 2.0 * rate), rtol=1e-9
        )


class TestLeaveOneOutInvariants:
    @given(t=slopes, rate=rates)
    def test_exclusion_never_improves(self, t, rate):
        if t.size < 2:
            return
        base = optimal_total_latency(t, rate)
        excluded = optimal_latency_excluding_each(t, rate)
        assert np.all(excluded >= base * (1 - 1e-12))

    @given(t=slopes, rate=rates)
    def test_excluding_the_fastest_hurts_most(self, t, rate):
        if t.size < 2:
            return
        excluded = optimal_latency_excluding_each(t, rate)
        fastest = int(np.argmin(t))
        assert excluded[fastest] == pytest.approx(float(excluded.max()), rel=1e-12)


class TestWaterFillingAgreement:
    @settings(max_examples=40)
    @given(t=slopes, rate=rates)
    def test_matches_pr_closed_form(self, t, rate):
        model = LinearLatencyModel(t)
        result = water_filling_allocation(model, rate)
        np.testing.assert_allclose(result.loads, pr_loads(t, rate), rtol=1e-6, atol=1e-9 * rate)
