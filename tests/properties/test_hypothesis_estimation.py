"""Property-based tests for the verification estimator (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import estimate_execution_value

scales = st.floats(min_value=0.05, max_value=50.0)
loads = st.floats(min_value=0.05, max_value=50.0)


class TestEstimatorProperties:
    @settings(max_examples=100)
    @given(t=scales, load=loads, seed=st.integers(0, 2**32 - 1))
    def test_estimate_near_truth_on_large_samples(self, t, load, seed):
        rng = np.random.default_rng(seed)
        sojourns = rng.exponential(t * load, size=20_000)
        estimate = estimate_execution_value(sojourns, load)
        # cv = 1 for exponential: 20k samples -> ~0.7% std error; 5
        # sigma keeps the property sound across all seeds.
        assert estimate.value == pytest.approx(t, rel=0.05)

    @settings(max_examples=100)
    @given(t=scales, load=loads)
    def test_noise_free_estimate_is_exact(self, t, load):
        sojourns = np.full(100, t * load)
        estimate = estimate_execution_value(sojourns, load)
        assert estimate.value == pytest.approx(t, rel=1e-12)
        assert estimate.stderr == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=100)
    @given(
        t=scales,
        load=loads,
        scale=st.floats(min_value=0.1, max_value=10.0),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_load_scaling_consistency(self, t, load, scale, seed):
        # The same sojourn sample attributed to a `scale`-times larger
        # load must yield a `scale`-times smaller estimate.
        rng = np.random.default_rng(seed)
        sojourns = rng.exponential(t * load, size=500)
        base = estimate_execution_value(sojourns, load)
        scaled = estimate_execution_value(sojourns, load * scale)
        assert scaled.value == pytest.approx(base.value / scale, rel=1e-9)

    @settings(max_examples=100)
    @given(t=scales, load=loads, seed=st.integers(0, 2**32 - 1))
    def test_ci_ordering(self, t, load, seed):
        rng = np.random.default_rng(seed)
        sojourns = rng.exponential(t * load, size=200)
        estimate = estimate_execution_value(sojourns, load)
        lo, hi = estimate.ci95
        assert lo <= estimate.value <= hi
