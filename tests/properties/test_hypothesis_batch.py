"""Property-based agreement of the batch kernel with the scalar path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.mechanism import VerificationMechanism
from repro.mechanism.batch import batch_run

profile_matrices = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.tuples(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 12), st.just(n)),
            elements=st.floats(min_value=0.05, max_value=50.0),
        ),
        arrays(
            np.float64,
            st.just(n),
            elements=st.floats(min_value=1.0, max_value=4.0),
        ),
    )
)


class TestBatchScalarAgreement:
    @settings(max_examples=100)
    @given(
        data=profile_matrices,
        rate=st.floats(min_value=0.1, max_value=100.0),
        mode=st.sampled_from(["observed", "declared"]),
    )
    def test_every_profile_matches_scalar_run(self, data, rate, mode):
        bids, exec_factors = data
        execs = bids * exec_factors[None, :]
        batch = batch_run(bids, rate, execs, compensation=mode)
        mechanism = VerificationMechanism(mode)
        # Spot-check the first and last rows (the scalar path is slow).
        for k in (0, bids.shape[0] - 1):
            outcome = mechanism.run(bids[k], rate, execs[k])
            np.testing.assert_allclose(
                batch.payment[k], outcome.payments.payment,
                rtol=1e-10, atol=1e-10 * max(1.0, rate**2),
            )
            np.testing.assert_allclose(
                batch.utility[k], outcome.payments.utility,
                rtol=1e-10, atol=1e-10 * max(1.0, rate**2),
            )

    @settings(max_examples=100)
    @given(data=profile_matrices, rate=st.floats(min_value=0.1, max_value=100.0))
    def test_batch_invariants(self, data, rate):
        bids, exec_factors = data
        execs = bids * exec_factors[None, :]
        batch = batch_run(bids, rate, execs)
        np.testing.assert_allclose(
            batch.loads.sum(axis=1), rate, rtol=1e-9
        )
        # Observed compensation: utility == bonus for every profile.
        np.testing.assert_allclose(
            batch.utility, batch.bonus, rtol=1e-9, atol=1e-9 * max(1.0, rate**2)
        )
