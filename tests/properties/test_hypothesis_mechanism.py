"""Property-based tests of the mechanism's theorems (hypothesis).

Theorem 3.1 (truthfulness) and Theorem 3.2 (voluntary participation)
are universally quantified over true values, arrival rates, deviations,
and opponents' bids; hypothesis samples that space.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.mechanism import ArcherTardosMechanism, VCGMechanism, VerificationMechanism

true_values = arrays(
    np.float64,
    st.integers(min_value=2, max_value=12),
    elements=st.floats(min_value=0.05, max_value=50.0),
)
rates = st.floats(min_value=0.1, max_value=100.0)
bid_factors = st.floats(min_value=0.05, max_value=20.0)
exec_factors = st.floats(min_value=1.0, max_value=10.0)

_mechanism = VerificationMechanism()


def _utility(mechanism, t, rate, agent, bid, execution, opponent_bids=None):
    bids = (t if opponent_bids is None else opponent_bids).copy()
    bids[agent] = bid
    execs = bids.copy()
    execs[agent] = execution
    outcome = mechanism.run(bids, rate, execs)
    return float(outcome.payments.utility[agent])


class TestTheorem31:
    @settings(max_examples=150)
    @given(
        t=true_values,
        rate=rates,
        bf=bid_factors,
        ef=exec_factors,
        data=st.data(),
    )
    def test_truth_dominates_any_deviation(self, t, rate, bf, ef, data):
        agent = data.draw(st.integers(0, t.size - 1))
        truthful = _utility(_mechanism, t, rate, agent, t[agent], t[agent])
        deviated = _utility(
            _mechanism, t, rate, agent, bf * t[agent], ef * t[agent]
        )
        scale = max(1.0, abs(truthful))
        assert deviated <= truthful + 1e-8 * scale

    @settings(max_examples=100)
    @given(t=true_values, rate=rates, bf=bid_factors, ef=exec_factors, data=st.data())
    def test_truth_dominates_against_lying_opponents(self, t, rate, bf, ef, data):
        agent = data.draw(st.integers(0, t.size - 1))
        factors = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.2, max_value=5.0),
                    min_size=t.size,
                    max_size=t.size,
                )
            )
        )
        opponents = t * factors
        truthful = _utility(
            _mechanism, t, rate, agent, t[agent], t[agent], opponents
        )
        deviated = _utility(
            _mechanism, t, rate, agent, bf * t[agent], ef * t[agent], opponents
        )
        scale = max(1.0, abs(truthful))
        assert deviated <= truthful + 1e-8 * scale


class TestTheorem32:
    @settings(max_examples=150)
    @given(t=true_values, rate=rates)
    def test_truthful_utility_nonnegative(self, t, rate):
        outcome = _mechanism.run(t, rate, t)
        assert np.all(outcome.payments.utility >= -1e-9 * max(1.0, rate**2))

    @settings(max_examples=100)
    @given(t=true_values, rate=rates, data=st.data())
    def test_vp_against_arbitrary_opponents(self, t, rate, data):
        agent = data.draw(st.integers(0, t.size - 1))
        factors = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.2, max_value=5.0),
                    min_size=t.size,
                    max_size=t.size,
                )
            )
        )
        bids = t * factors
        bids[agent] = t[agent]
        execs = bids.copy()
        execs[agent] = t[agent]
        outcome = _mechanism.run(bids, rate, execs)
        assert outcome.payments.utility[agent] >= -1e-9 * max(1.0, rate**2)


class TestPaymentIdentities:
    @settings(max_examples=100)
    @given(t=true_values, rate=rates, ef=exec_factors)
    def test_utility_equals_bonus(self, t, rate, ef):
        execs = t * ef
        outcome = _mechanism.run(t, rate, execs)
        np.testing.assert_allclose(
            outcome.payments.utility, outcome.payments.bonus, rtol=1e-9, atol=1e-9
        )

    @settings(max_examples=100)
    @given(t=true_values, rate=rates)
    def test_vcg_equals_archer_tardos(self, t, rate):
        vcg = VCGMechanism().run(t, rate)
        at = ArcherTardosMechanism().run(t, rate)
        np.testing.assert_allclose(
            vcg.payments.payment,
            at.payments.payment,
            rtol=1e-8,
            atol=1e-10 * rate**2,
        )

    @settings(max_examples=100)
    @given(t=true_values, rate=rates)
    def test_truthful_frugality_closed_form(self, t, rate):
        # Ratio >= 1 is Theorem 3.2.  The exact truthful ratio has the
        # closed form 1 + sum_i s_i/(S - s_i) with s_i = 1/t_i (it is
        # independent of R, and unbounded when one machine dominates).
        outcome = _mechanism.run(t, rate, t)
        ratio = outcome.frugality_ratio
        assert ratio >= 1.0 - 1e-9
        s = 1.0 / t
        expected = 1.0 + float(np.sum(s / (s.sum() - s)))
        assert ratio == pytest.approx(expected, rel=1e-9)


class TestEfficiency:
    @settings(max_examples=100)
    @given(t=true_values, rate=rates, data=st.data())
    def test_any_misreport_weakly_raises_realised_latency(self, t, rate, data):
        factors = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.1, max_value=10.0),
                    min_size=t.size,
                    max_size=t.size,
                )
            )
        )
        truthful = _mechanism.run(t, rate, t).realised_latency
        lied = _mechanism.run(t * factors, rate, t).realised_latency
        assert lied >= truthful * (1 - 1e-9)
