"""Property-based tests for the queueing substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.system.queueing import lindley_waits

positive_times = arrays(
    np.float64,
    st.integers(min_value=2, max_value=200),
    elements=st.floats(min_value=0.0, max_value=100.0),
)


class TestLindleyInvariants:
    @settings(max_examples=150)
    @given(service=positive_times, data=st.data())
    def test_matches_scalar_recursion(self, service, data):
        n = service.size
        interarrival = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=100.0),
                    min_size=n - 1,
                    max_size=n - 1,
                )
            )
        )
        vectorised = lindley_waits(interarrival, service)
        w = 0.0
        expected = [0.0]
        for k in range(n - 1):
            w = max(0.0, w + service[k] - interarrival[k])
            expected.append(w)
        np.testing.assert_allclose(vectorised, expected, atol=1e-9)

    @settings(max_examples=100)
    @given(service=positive_times, data=st.data())
    def test_waits_nonnegative(self, service, data):
        n = service.size
        interarrival = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=100.0),
                    min_size=n - 1,
                    max_size=n - 1,
                )
            )
        )
        assert np.all(lindley_waits(interarrival, service) >= 0.0)

    @settings(max_examples=100)
    @given(service=positive_times)
    def test_zero_gaps_give_pure_backlog(self, service):
        waits = lindley_waits(np.zeros(service.size - 1), service)
        np.testing.assert_allclose(waits, np.concatenate(([0.0], np.cumsum(service[:-1]))), rtol=1e-12, atol=1e-9)

    @settings(max_examples=100)
    @given(service=positive_times, data=st.data())
    def test_monotone_in_service_times(self, service, data):
        # Increasing any service time never reduces any waiting time.
        n = service.size
        interarrival = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=10.0),
                    min_size=n - 1,
                    max_size=n - 1,
                )
            )
        )
        k = data.draw(st.integers(0, n - 1))
        bumped = service.copy()
        bumped[k] += 1.0
        base = lindley_waits(interarrival, service)
        more = lindley_waits(interarrival, bumped)
        assert np.all(more >= base - 1e-9)
