"""Property-based tests for the quarantine circuit breaker (hypothesis).

Three behavioural contracts of :class:`QuarantinePolicy`, exercised
over random outcome histories rather than hand-picked traces:

* re-admission is monotone in the reputation gate — lowering
  ``readmission_reputation`` never *delays* a machine's return;
* a tripped circuit never serves before its cool-down has elapsed, and
  re-enters exactly as a half-open probe on the first eligible round;
* repeated trips back off: quarantine lengths double (capped) and are
  non-decreasing until the circuit fully closes again.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.quarantine import CircuitState, QuarantinePolicy

# Random round outcomes for one machine: True = clean round.
histories = st.lists(st.booleans(), min_size=1, max_size=60)
gates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
trip_counts = st.integers(min_value=1, max_value=6)


def _tripped_policy(**kwargs) -> QuarantinePolicy:
    """A policy tracking machine ``m`` whose circuit has just tripped."""
    policy = QuarantinePolicy(**kwargs)
    policy.admit("m")
    for _ in range(policy.failure_threshold):
        policy.begin_round()
        policy.record_failure("m", "seed-trip")
    assert policy.state_of("m") is CircuitState.OPEN
    return policy


def _replay(policy: QuarantinePolicy, history: list[bool]) -> int | None:
    """Replay ``history`` against a tripped policy.

    Returns the step index at which the circuit first re-closed, or
    ``None`` if it never did.  Also asserts, at every step, that an
    OPEN circuit is never admitted — the safety half of the contract.
    """
    for index, clean in enumerate(history):
        was_open = policy.state_of("m") is CircuitState.OPEN
        admitted = policy.begin_round()
        if policy.state_of("m") is CircuitState.OPEN:
            assert "m" not in admitted
        if was_open and "m" in admitted:
            # The only legal way out of quarantine is a half-open probe.
            assert policy.state_of("m") is CircuitState.HALF_OPEN
        if "m" not in admitted:
            continue
        if clean:
            policy.record_success("m")
        else:
            policy.record_failure("m", "fault")
        if policy.state_of("m") is CircuitState.CLOSED:
            # Re-admission must have cleared the reputation gate.
            assert policy.reputation_of("m") >= policy.readmission_reputation
            return index
    return None


class TestReadmissionMonotoneInReputation:
    @given(history=histories, gate_a=gates, gate_b=gates)
    @settings(max_examples=200, deadline=None)
    def test_lower_gate_never_readmits_later(self, history, gate_a, gate_b):
        low, high = sorted((gate_a, gate_b))
        close_low = _replay(
            _tripped_policy(readmission_reputation=low), list(history)
        )
        close_high = _replay(
            _tripped_policy(readmission_reputation=high), list(history)
        )
        # Until the looser policy closes, both evolve identically, so a
        # re-admission under the strict gate implies one (no later)
        # under the loose gate.
        if close_high is not None:
            assert close_low is not None
            assert close_low <= close_high

    @given(history=histories, gate=gates)
    @settings(max_examples=200, deadline=None)
    def test_readmission_implies_reputation_cleared(self, history, gate):
        # The gate itself: _replay asserts reputation >= gate at the
        # closing step; this test just drives it across random gates.
        _replay(_tripped_policy(readmission_reputation=gate), list(history))


class TestCooldownIsRespected:
    @given(
        cooldown=st.integers(min_value=1, max_value=8),
        threshold=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_open_circuit_never_serves_before_cooldown(
        self, cooldown, threshold
    ):
        policy = _tripped_policy(
            failure_threshold=threshold,
            cooldown_rounds=cooldown,
            max_cooldown_rounds=max(16, cooldown),
        )
        quarantine_length = policy.health_of("m").current_cooldown
        assert quarantine_length == cooldown
        # Absent for exactly cooldown-1 rounds ...
        for _ in range(quarantine_length - 1):
            assert "m" not in policy.begin_round()
            assert policy.state_of("m") is CircuitState.OPEN
        # ... then back as a probe, never straight to closed.
        assert "m" in policy.begin_round()
        assert policy.state_of("m") is CircuitState.HALF_OPEN

    @given(history=histories)
    @settings(max_examples=200, deadline=None)
    def test_admitted_and_quarantined_are_disjoint(self, history):
        policy = _tripped_policy()
        for clean in history:
            admitted = policy.begin_round()
            assert not set(admitted) & set(policy.quarantined())
            if "m" not in admitted:
                continue
            if clean:
                policy.record_success("m")
            else:
                policy.record_failure("m", "fault")


class TestRepeatedTripsBackOff:
    @given(
        trips=trip_counts,
        cooldown=st.integers(min_value=1, max_value=4),
        cap=st.integers(min_value=4, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_cooldown_doubles_and_caps(self, trips, cooldown, cap):
        policy = QuarantinePolicy(
            cooldown_rounds=cooldown, max_cooldown_rounds=max(cap, cooldown)
        )
        policy.admit("m")
        policy.force_open("m", "first-trip")
        cooldowns = [policy.health_of("m").current_cooldown]
        for _ in range(trips):
            # Serve the quarantine, then fail the probe to re-trip
            # without ever closing in between.
            while policy.state_of("m") is CircuitState.OPEN:
                policy.begin_round()
            assert policy.state_of("m") is CircuitState.HALF_OPEN
            policy.record_failure("m", "failed-probe")
            assert policy.state_of("m") is CircuitState.OPEN
            cooldowns.append(policy.health_of("m").current_cooldown)
        for previous, current in zip(cooldowns, cooldowns[1:]):
            assert current == min(2 * previous, policy.max_cooldown_rounds)
        assert cooldowns == sorted(cooldowns)
        assert all(c <= policy.max_cooldown_rounds for c in cooldowns)

    @given(trips=trip_counts)
    @settings(max_examples=50, deadline=None)
    def test_full_close_resets_the_backoff(self, trips):
        policy = QuarantinePolicy(
            cooldown_rounds=2,
            max_cooldown_rounds=16,
            probe_successes_required=1,
            readmission_reputation=0.0,
        )
        policy.admit("m")
        for _ in range(trips):
            policy.force_open("m", "trip")
            while policy.state_of("m") is CircuitState.OPEN:
                policy.begin_round()
            policy.record_success("m")
            assert policy.state_of("m") is CircuitState.CLOSED
        # A fresh trip after a clean close starts from the base cooldown.
        policy.force_open("m", "fresh-trip")
        assert policy.health_of("m").current_cooldown == policy.cooldown_rounds
