"""Property-based guarantees for the campaign cache key.

The key must be *stable* under representational noise (dict insertion
order, NumPy dtype width, negative zero) and *sensitive* to any change
of a result-affecting field — together these are exactly "a cache hit
is never stale".
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.cache import ResultCache
from repro.parallel.units import (
    ExperimentUnit,
    canonical_json,
    canonicalise,
    unit_cache_key,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-(2**40), 2**40), finite_floats,
    st.text(max_size=12),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def shuffled(value, rng):
    """A deep copy with every dict's insertion order randomised."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {k: shuffled(value[k], rng) for k in keys}
    if isinstance(value, list):
        return [shuffled(item, rng) for item in value]
    return value


def make_unit(**overrides) -> ExperimentUnit:
    kwargs = dict(
        kind="protocol",
        scenario="True1",
        bid_factor=1.0,
        execution_factor=1.0,
        true_values=(1.0, 2.0, 5.0),
        arrival_rate=10.0,
        seed=0,
        duration=50.0,
    )
    kwargs.update(overrides)
    return ExperimentUnit(**kwargs)


class TestKeyStability:
    @settings(max_examples=200)
    @given(value=json_values, reorder_seed=st.integers(0, 2**31))
    def test_dict_order_never_changes_canonical_json(self, value, reorder_seed):
        rng = np.random.default_rng(reorder_seed)
        assert canonical_json(shuffled(value, rng)) == canonical_json(value)

    @settings(max_examples=200)
    @given(value=st.integers(-(2**31), 2**31 - 1))
    def test_integer_dtype_width_never_changes_the_key(self, value):
        assert (
            canonicalise(np.int32(value))
            == canonicalise(np.int64(value))
            == canonicalise(value)
        )

    @settings(max_examples=200)
    @given(
        mantissa=st.integers(-(2**23), 2**23), exponent=st.integers(-10, 10)
    )
    def test_float_dtype_width_never_changes_the_key(self, mantissa, exponent):
        # Dyadic rationals in float32 range are exactly representable in
        # both widths, so the canonical form must not depend on dtype.
        value = float(mantissa) * 2.0**exponent
        assert (
            canonicalise(np.float32(value))
            == canonicalise(np.float64(value))
            == canonicalise(value)
        )

    @settings(max_examples=100)
    @given(
        true_values=st.lists(
            st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=6
        ),
        rate=st.floats(min_value=0.1, max_value=100.0),
        seed=st.integers(0, 1000),
    )
    def test_key_is_reproducible(self, true_values, rate, seed):
        a = make_unit(
            true_values=tuple(true_values), arrival_rate=rate, seed=seed
        )
        b = make_unit(
            true_values=tuple(np.asarray(true_values, dtype=np.float64)),
            arrival_rate=np.float64(rate),
            seed=np.int64(seed),
        )
        assert unit_cache_key(a) == unit_cache_key(b)


class TestKeySensitivity:
    @settings(max_examples=100)
    @given(
        seed=st.integers(0, 1000),
        other_seed=st.integers(0, 1000),
        duration=st.floats(min_value=1.0, max_value=500.0),
        bid_factor=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_changed_field_changes_key(
        self, seed, other_seed, duration, bid_factor
    ):
        base = make_unit(seed=seed)
        assert (unit_cache_key(make_unit(seed=other_seed))
                == unit_cache_key(base)) == (seed == other_seed)
        if duration != base.duration:
            assert unit_cache_key(make_unit(seed=seed, duration=duration)) \
                != unit_cache_key(base)
        if bid_factor != base.bid_factor:
            assert unit_cache_key(
                make_unit(seed=seed, bid_factor=bid_factor)
            ) != unit_cache_key(base)

    @settings(max_examples=50)
    @given(
        seed=st.integers(0, 100),
        new_rate=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_cache_hit_never_stale_after_config_change(
        self, tmp_path_factory, seed, new_rate
    ):
        # Store a payload under the original unit's key; any config
        # change must produce a key the cache has never seen.
        cache = ResultCache(
            tmp_path_factory.mktemp("hypothesis-cache") / "c"
        )
        unit = make_unit(seed=seed)
        cache.put(unit_cache_key(unit), {"realised_latency": 1.0})
        changed = make_unit(seed=seed, arrival_rate=new_rate)
        if changed.as_config() != unit.as_config():
            assert cache.get(unit_cache_key(changed)) is None
        else:
            assert cache.get(unit_cache_key(changed)) is not None
