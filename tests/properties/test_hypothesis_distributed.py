"""Property-based tests for the distributed layer (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distributed import (
    DistributedVerificationMechanism,
    random_tree_overlay,
    share_additively,
    star_overlay,
    tree_overlay,
    tree_sum,
)
from repro.mechanism import VerificationMechanism

values_arrays = arrays(
    np.float64,
    st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=-100.0, max_value=100.0),
)
slopes = arrays(
    np.float64,
    st.integers(min_value=2, max_value=16),
    elements=st.floats(min_value=0.05, max_value=50.0),
)


class TestTreeSumProperties:
    @settings(max_examples=100)
    @given(values=values_arrays, seed=st.integers(0, 2**32 - 1), arity=st.integers(1, 4))
    def test_any_tree_computes_the_exact_sum(self, values, seed, arity):
        n = values.size
        rng = np.random.default_rng(seed)
        for overlay in (
            star_overlay(n),
            tree_overlay(n, arity=arity),
            random_tree_overlay(n, rng),
        ):
            total, stats = tree_sum(overlay, values)
            assert total == pytest.approx(float(values.sum()), abs=1e-7)
            assert stats.total_messages == 2 * n


class TestSecretSharingProperties:
    @settings(max_examples=100)
    @given(
        value=st.floats(min_value=-1e4, max_value=1e4),
        k=st.integers(1, 8),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_shares_always_reconstruct(self, value, k, seed):
        shares = share_additively(value, k, np.random.default_rng(seed))
        assert shares.sum() == pytest.approx(value, abs=1e-6)
        assert shares.size == k


class TestDistributedEqualsCentralised:
    @settings(max_examples=60)
    @given(
        t=slopes,
        rate=st.floats(min_value=0.1, max_value=100.0),
        bid_factor=st.floats(min_value=0.2, max_value=5.0),
        exec_factor=st.floats(min_value=1.0, max_value=4.0),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_payments_equal_on_random_instances(
        self, t, rate, bid_factor, exec_factor, seed
    ):
        bids = t.copy()
        bids[0] *= bid_factor
        executions = t.copy()
        executions[0] *= exec_factor
        central = VerificationMechanism().run(bids, rate, executions)
        overlay = random_tree_overlay(t.size, np.random.default_rng(seed))
        distributed = DistributedVerificationMechanism(overlay).run(
            bids, rate, executions
        )
        np.testing.assert_allclose(
            distributed.outcome.payments.payment,
            central.payments.payment,
            rtol=1e-8,
            atol=1e-8 * max(1.0, rate**2),
        )
