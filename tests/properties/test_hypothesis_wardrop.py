"""Property-based tests for the Wardrop/PoA analysis (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import price_of_anarchy, wardrop_equilibrium
from repro.latency import AffineLatencyModel, LinearLatencyModel

sizes = st.integers(min_value=2, max_value=10)


@st.composite
def affine_models(draw):
    n = draw(sizes)
    intercepts = draw(
        arrays(np.float64, n, elements=st.floats(min_value=0.0, max_value=10.0))
    )
    slopes = draw(
        arrays(np.float64, n, elements=st.floats(min_value=0.05, max_value=10.0))
    )
    return AffineLatencyModel(intercepts, slopes)


class TestEquilibriumProperties:
    @settings(max_examples=80)
    @given(model=affine_models(), rate=st.floats(min_value=0.1, max_value=50.0))
    def test_conservation_and_equal_latencies(self, model, rate):
        eq = wardrop_equilibrium(model, rate)
        assert eq.loads.sum() == pytest.approx(rate, rel=1e-8)
        used = eq.loads > 1e-9 * rate
        latencies = model.per_job(eq.loads)
        if int(used.sum()) > 1:
            spread = np.ptp(latencies[used]) / max(latencies[used].mean(), 1e-12)
            assert spread < 1e-5

    @settings(max_examples=80)
    @given(model=affine_models(), rate=st.floats(min_value=0.1, max_value=50.0))
    def test_unused_machines_no_faster_than_common_level(self, model, rate):
        eq = wardrop_equilibrium(model, rate)
        used = eq.loads > 1e-9 * rate
        latencies = model.per_job(eq.loads)
        if used.all() or not used.any():
            return
        level = float(latencies[used].max())
        # An idle machine's zero-load latency must be >= the level
        # (otherwise selfish jobs would move to it).
        assert np.all(latencies[~used] >= level * (1 - 1e-6))


class TestPriceOfAnarchyBounds:
    @settings(max_examples=80)
    @given(model=affine_models(), rate=st.floats(min_value=0.1, max_value=50.0))
    def test_affine_poa_within_four_thirds(self, model, rate):
        result = price_of_anarchy(model, rate)
        assert result.price_of_anarchy >= 1.0 - 1e-9
        assert result.price_of_anarchy <= 4.0 / 3.0 + 1e-6

    @settings(max_examples=60)
    @given(
        slopes=arrays(
            np.float64,
            st.integers(min_value=2, max_value=10),
            elements=st.floats(min_value=0.05, max_value=10.0),
        ),
        rate=st.floats(min_value=0.1, max_value=50.0),
    )
    def test_linear_poa_is_exactly_one(self, slopes, rate):
        result = price_of_anarchy(LinearLatencyModel(slopes), rate)
        assert result.price_of_anarchy == pytest.approx(1.0, abs=1e-7)
