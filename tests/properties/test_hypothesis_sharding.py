"""Property-based tests for sharded (S, Q) aggregation (hypothesis).

The sharding argument of ``docs/distributed.md``: the mechanism needs
only ``S = sum 1/b_j`` and ``Q = sum t̂_j/b_j²`` globally, both plain
sums, so *any* partition of the agents over any overlay tree must
reproduce the monolithic sums.  Three layers of that claim:

* the compensated partial-sum merge agrees with the flat ``np.sum``
  to ~1e-12 relative, for any partition and tree arity;
* payload concatenation restores the monolithic array *bit-exactly*
  for any partition (the exact-aggregation mode's foundation);
* end-to-end, the exact-mode sharded service pays bit-identically to
  the single-coordinator path for any shard count and agent profile.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.agents import TruthfulAgent
from repro.distributed import (
    PartialSum,
    ShardPartial,
    ShardedCoordinatorService,
    aggregate_shards,
    concatenate_payload,
    partition_names,
    tree_overlay,
)
from repro.protocol import run_protocol

bid_arrays = arrays(
    np.float64,
    st.integers(min_value=2, max_value=48),
    elements=st.floats(min_value=0.05, max_value=50.0),
)
estimate_arrays = arrays(
    np.float64,
    st.integers(min_value=2, max_value=48),
    elements=st.floats(min_value=0.0, max_value=80.0),
)


def partition_bounds(n, n_shards, seed):
    """Random contiguous partition of ``range(n)`` into ``n_shards``."""
    rng = np.random.default_rng(seed)
    cuts = np.sort(rng.choice(np.arange(1, n), size=n_shards - 1, replace=False))
    return np.concatenate([[0], cuts, [n]]) if n_shards > 1 else np.array([0, n])


class TestPartialSumProperties:
    @settings(max_examples=120)
    @given(
        bids=bid_arrays,
        n_shards=st.integers(1, 8),
        seed=st.integers(0, 2**32 - 1),
        arity=st.integers(1, 4),
    )
    def test_sharded_s_and_q_match_monolithic_sums(
        self, bids, n_shards, seed, arity
    ):
        n = bids.size
        n_shards = min(n_shards, n)
        bounds = partition_bounds(n, n_shards, seed)
        estimates = np.random.default_rng(seed).uniform(0.0, 10.0, size=n)
        inv = 1.0 / bids
        quot = estimates / bids**2
        partials = [
            ShardPartial(
                k,
                int(bounds[k + 1] - bounds[k]),
                PartialSum.of(inv[bounds[k] : bounds[k + 1]]),
                PartialSum.of(quot[bounds[k] : bounds[k + 1]]),
            )
            for k in range(n_shards)
        ]
        root, _ = aggregate_shards(tree_overlay(n_shards, arity=arity), partials)
        assert root.inverse_sum.value == pytest.approx(
            float(np.sum(inv)), rel=1e-12, abs=1e-12
        )
        assert root.quotient_sum.value == pytest.approx(
            float(np.sum(quot)), rel=1e-12, abs=1e-12
        )
        assert root.n_agents == n

    @settings(max_examples=120)
    @given(
        bids=bid_arrays,
        n_shards=st.integers(1, 8),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_payload_concatenation_is_bit_exact(self, bids, n_shards, seed):
        n = bids.size
        n_shards = min(n_shards, n)
        bounds = partition_bounds(n, n_shards, seed)
        partials = [
            ShardPartial(
                k,
                int(bounds[k + 1] - bounds[k]),
                payload={k: {"bids": bids[bounds[k] : bounds[k + 1]]}},
            )
            for k in range(n_shards)
        ]
        root, _ = aggregate_shards(tree_overlay(n_shards), partials)
        assert np.array_equal(concatenate_payload(root, "bids"), bids)


class TestPartitionProperties:
    @settings(max_examples=100)
    @given(
        n=st.integers(min_value=1, max_value=200),
        n_shards=st.integers(min_value=1, max_value=32),
    )
    def test_partition_is_contiguous_balanced_order_preserving(
        self, n, n_shards
    ):
        n_shards = min(n_shards, n)
        names = [f"C{i}" for i in range(n)]
        parts = partition_names(names, n_shards)
        assert [x for p in parts for x in p] == names  # order preserved
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1  # balanced
        assert sum(sizes) == n


class TestEndToEndParity:
    @settings(max_examples=12, deadline=None)
    @given(
        values=arrays(
            np.float64,
            st.integers(min_value=2, max_value=12),
            elements=st.floats(min_value=0.2, max_value=8.0),
        ),
        n_shards=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    def test_exact_mode_pays_bit_identically_for_any_partition(
        self, values, n_shards, seed
    ):
        n_shards = min(n_shards, values.size)
        mono = run_protocol(
            [TruthfulAgent(t) for t in values],
            5.0,
            duration=25.0,
            rng=np.random.default_rng(seed),
            deterministic_service=True,
        )
        svc = ShardedCoordinatorService(
            [TruthfulAgent(t) for t in values],
            5.0,
            shards=n_shards,
            duration=25.0,
            rng=np.random.default_rng(seed),
        )
        try:
            result = svc.run_round()
        finally:
            svc.close()
        assert np.array_equal(
            result.outcome.payments.payment, mono.outcome.payments.payment
        )
        assert np.array_equal(
            result.estimated_execution_values, mono.estimated_execution_values
        )
        assert result.jobs_routed == mono.jobs_routed
