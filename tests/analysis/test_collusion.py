"""Unit tests for the coalition-deviation analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.collusion import (
    best_pair_deviation,
    pairwise_collusion_scan,
)
from repro.mechanism import VerificationMechanism


class TestBestPairDeviation:
    def test_joint_overbidding_is_profitable(self, mechanism, small_true_values):
        # The headline A11 finding: pairs gain by overbidding together —
        # each member inflates the other's leave-one-out bonus.
        deviation = best_pair_deviation(
            mechanism, small_true_values, 10.0, (0, 1)
        )
        assert deviation.profitable
        assert deviation.best_bids[0] > small_true_values[0]
        assert deviation.best_bids[1] > small_true_values[1]

    def test_individual_rationality_is_not_violated(self, mechanism, small_true_values):
        # Sanity: the gain requires *joint* movement; each member alone
        # still cannot gain (Theorem 3.1 holds individually).
        from repro.mechanism import best_deviation_gain

        for agent in (0, 1):
            solo = best_deviation_gain(mechanism, small_true_values, 10.0, agent)
            assert solo.gain <= 1e-9

    def test_identical_members_rejected(self, mechanism, small_true_values):
        with pytest.raises(ValueError, match="distinct"):
            best_pair_deviation(mechanism, small_true_values, 10.0, (1, 1))

    def test_truthful_point_in_grid_means_nonnegative_gain(
        self, mechanism, small_true_values
    ):
        deviation = best_pair_deviation(
            mechanism, small_true_values, 10.0, (2, 3), bid_factors=(1.0,)
        )
        assert deviation.gain == pytest.approx(0.0, abs=1e-12)


class TestPairwiseScan:
    def test_scans_all_pairs_sorted(self, mechanism, small_true_values):
        scan = pairwise_collusion_scan(mechanism, small_true_values, 10.0)
        n = small_true_values.size
        assert len(scan) == n * (n - 1) // 2
        gains = [d.gain for d in scan]
        assert gains == sorted(gains, reverse=True)

    def test_fast_machine_pairs_collude_hardest(self, mechanism, small_true_values):
        # The two fastest machines have the largest bonuses to inflate.
        scan = pairwise_collusion_scan(mechanism, small_true_values, 10.0)
        assert scan[0].members == (0, 1)

    def test_every_pair_profits_under_this_mechanism(
        self, mechanism, small_true_values
    ):
        # Documented limitation: no pair is collusion-proof.
        scan = pairwise_collusion_scan(mechanism, small_true_values, 10.0)
        assert all(d.profitable for d in scan)

    def test_vcg_baseline_is_also_collusion_prone(self, vcg, small_true_values):
        # The weakness is VCG-family-wide, not verification-specific
        # (the slowest pair's gain can sit below the grid resolution,
        # so assert near-universal rather than universal profitability).
        scan = pairwise_collusion_scan(vcg, small_true_values, 10.0)
        assert scan[0].profitable
        assert sum(d.profitable for d in scan) >= len(scan) - 1

    def test_fast_path_matches_scalar_path(self, mechanism, vcg, small_true_values):
        # The vectorised scan (VerificationMechanism) and the generic
        # scalar loop (any Mechanism) must agree where the payment
        # rules coincide: probe the verification fast path against a
        # hand loop over the same grid.
        from repro.analysis.collusion import _joint_utility

        grid = (0.5, 1.0, 2.0)
        expected = max(
            _joint_utility(
                mechanism, small_true_values, 10.0, (0, 2),
                (fi * small_true_values[0], fj * small_true_values[2]),
            )
            for fi in grid
            for fj in grid
        )
        fast = best_pair_deviation(
            mechanism, small_true_values, 10.0, (0, 2), bid_factors=grid
        )
        assert fast.best_joint_utility == pytest.approx(expected)
