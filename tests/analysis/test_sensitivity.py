"""Unit tests for the sensitivity sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    sweep_arrival_rate,
    sweep_heterogeneity,
    sweep_system_size,
)
from repro.system.cluster import paper_cluster


class TestSweepSystemSize:
    def test_parameters_recorded(self, rng):
        results = sweep_system_size([4, 8, 16], rng)
        assert [r.parameter for r in results] == [4.0, 8.0, 16.0]

    def test_frugality_stays_above_one(self, rng):
        for r in sweep_system_size([4, 16, 64], rng):
            assert r.frugality_ratio >= 1.0

    def test_frugality_converges_to_two_with_scale(self, rng):
        # ratio = 1 + sum s_i/(S - s_i) decreases with n and converges
        # to 2 (each machine's rent vanishes, but their sum tends to
        # the whole optimum once more).
        results = sweep_system_size([4, 256], rng)
        assert results[-1].frugality_ratio < results[0].frugality_ratio
        assert results[-1].frugality_ratio == pytest.approx(2.0, abs=0.05)

    def test_small_systems_rejected(self, rng):
        with pytest.raises(ValueError):
            sweep_system_size([1], rng)


class TestSweepArrivalRate:
    def test_percent_metrics_rate_invariant(self):
        cluster = paper_cluster()
        results = sweep_arrival_rate(cluster, [5.0, 20.0, 80.0])
        degradations = [r.canonical_degradation_percent for r in results]
        ratios = [r.frugality_ratio for r in results]
        assert max(degradations) - min(degradations) < 1e-9
        assert max(ratios) - min(ratios) < 1e-9

    def test_latency_scales_quadratically(self):
        cluster = paper_cluster()
        results = sweep_arrival_rate(cluster, [10.0, 20.0])
        assert results[1].optimal_latency == pytest.approx(
            4.0 * results[0].optimal_latency
        )


class TestSweepHeterogeneity:
    def test_homogeneous_cluster_baseline(self, rng):
        results = sweep_heterogeneity(16, [1.0], rng)
        assert results[0].parameter == 1.0
        assert results[0].canonical_degradation_percent > 0.0

    def test_damage_grows_with_spread(self):
        rng = np.random.default_rng(4)
        results = sweep_heterogeneity(16, [1.0, 10.0, 100.0], rng)
        damages = [r.canonical_degradation_percent for r in results]
        assert damages[-1] > damages[0]

    def test_spread_below_one_rejected(self, rng):
        with pytest.raises(ValueError):
            sweep_heterogeneity(16, [0.5], rng)

    def test_tiny_cluster_rejected(self, rng):
        with pytest.raises(ValueError):
            sweep_heterogeneity(1, [2.0], rng)
