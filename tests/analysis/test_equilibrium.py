"""Unit tests for equilibrium and noisy-verification analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    dominant_strategy_grid,
    epsilon_truthfulness_under_noise,
)
from repro.mechanism import VerificationMechanism


class TestDominantStrategyGrid:
    def test_verification_mechanism_dominant(self, mechanism, small_true_values, rng):
        result = dominant_strategy_grid(
            mechanism, small_true_values, 10.0, 0, rng, n_opponent_profiles=10
        )
        assert result.holds
        assert result.profiles_checked == 10
        assert result.deviations_checked == 10 * 6 * 4

    def test_declared_variant_fails_dominance(
        self, declared_mechanism, small_true_values, rng
    ):
        result = dominant_strategy_grid(
            declared_mechanism, small_true_values, 10.0, 0, rng,
            n_opponent_profiles=5,
        )
        assert not result.holds
        assert result.max_gain > 0.0

    def test_every_agent_position_checked(self, mechanism, small_true_values, rng):
        for agent in range(small_true_values.size):
            result = dominant_strategy_grid(
                mechanism, small_true_values, 10.0, agent, rng,
                n_opponent_profiles=3,
            )
            assert result.holds

    def test_execution_factor_validation(self, mechanism, small_true_values, rng):
        with pytest.raises(ValueError):
            dominant_strategy_grid(
                mechanism, small_true_values, 10.0, 0, rng, exec_factors=(0.5,)
            )


class TestEpsilonUnderNoise:
    def test_zero_noise_gives_zero_epsilon(self, mechanism, small_true_values, rng):
        eps = epsilon_truthfulness_under_noise(
            mechanism, small_true_values, 10.0, 0, rng,
            noise_relative_std=0.0, n_samples=5,
        )
        assert eps == pytest.approx(0.0, abs=1e-9)

    def test_unbiased_noise_keeps_truthfulness_in_expectation(
        self, mechanism, small_true_values, rng
    ):
        # Structural fact: the payment is independent of the agent's own
        # observed value, so unbiased estimation noise does not open a
        # profitable deviation (up to Monte-Carlo error).
        eps = epsilon_truthfulness_under_noise(
            mechanism, small_true_values, 10.0, 0, rng,
            noise_relative_std=0.05, n_samples=300,
        )
        assert eps < 0.2

    def test_validation(self, mechanism, small_true_values, rng):
        with pytest.raises(ValueError):
            epsilon_truthfulness_under_noise(
                mechanism, small_true_values, 10.0, 0, rng,
                noise_relative_std=-0.1,
            )
        with pytest.raises(ValueError):
            epsilon_truthfulness_under_noise(
                mechanism, small_true_values, 10.0, 0, rng,
                noise_relative_std=0.1, n_samples=0,
            )
