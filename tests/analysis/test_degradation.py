"""Unit tests for degradation metrics and the multi-liar extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import multi_liar_degradation, scenario_degradations
from repro.analysis.degradation import degradation_percent, realised_latency
from repro.system.cluster import paper_cluster


class TestDegradationPercent:
    def test_zero_at_optimum(self):
        assert degradation_percent(78.43, 78.43) == 0.0

    def test_positive_above_optimum(self):
        assert degradation_percent(100.0, 80.0) == pytest.approx(25.0)

    def test_nonpositive_optimum_rejected(self):
        with pytest.raises(ValueError):
            degradation_percent(1.0, 0.0)


class TestRealisedLatency:
    def test_truthful_everything_is_optimal(self):
        t = paper_cluster().true_values
        assert realised_latency(t, t, t, 20.0) == pytest.approx(400 / 5.1)

    def test_execution_only_deviation(self):
        t = np.array([1.0, 1.0])
        # loads (5, 5); machine 0 runs at 2: L = 2*25 + 1*25 = 75.
        assert realised_latency(t, t, np.array([2.0, 1.0]), 10.0) == pytest.approx(75.0)


class TestScenarioDegradations:
    def test_matches_figure1(self):
        t = paper_cluster().true_values
        degr = scenario_degradations(t, 20.0)
        assert degr["True1"] == pytest.approx(0.0)
        assert degr["Low1"] == pytest.approx(11.02, abs=0.05)
        assert degr["Low2"] == pytest.approx(65.84, abs=0.05)

    def test_rate_invariance(self):
        # For linear latencies, percentages are invariant in R.
        t = paper_cluster().true_values
        a = scenario_degradations(t, 20.0)
        b = scenario_degradations(t, 7.0)
        for name in a:
            assert a[name] == pytest.approx(b[name])


class TestMultiLiar:
    def test_zero_liars_means_zero_degradation(self):
        t = paper_cluster().true_values
        degr = multi_liar_degradation(
            t, 20.0, bid_factor=0.5, execution_factor=2.0, max_liars=3
        )
        assert degr[0] == pytest.approx(0.0)

    def test_paper_conjecture_more_liars_more_damage(self):
        # "We expect even larger increase if more than one computer
        # does not report its true value..."
        t = paper_cluster().true_values
        degr = multi_liar_degradation(
            t, 20.0, bid_factor=0.5, execution_factor=2.0, max_liars=6
        )
        assert np.all(np.diff(degr) > 0.0)

    def test_one_liar_matches_low2(self):
        t = paper_cluster().true_values
        degr = multi_liar_degradation(
            t, 20.0, bid_factor=0.5, execution_factor=2.0, max_liars=1
        )
        assert degr[1] == pytest.approx(65.84, abs=0.05)

    def test_full_length_default(self):
        t = np.array([1.0, 2.0, 5.0])
        degr = multi_liar_degradation(t, 5.0, bid_factor=2.0, execution_factor=1.0)
        assert degr.shape == (4,)

    def test_validation(self):
        t = np.array([1.0, 2.0])
        with pytest.raises(ValueError):
            multi_liar_degradation(t, 5.0, bid_factor=1.0, execution_factor=0.5)
        with pytest.raises(ValueError):
            multi_liar_degradation(
                t, 5.0, bid_factor=1.0, execution_factor=1.0, max_liars=3
            )
