"""Unit tests for the Wardrop equilibrium and price of anarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import pr_loads
from repro.analysis.wardrop import price_of_anarchy, wardrop_equilibrium
from repro.latency import LinearLatencyModel, MM1LatencyModel
from repro.latency.affine import AffineLatencyModel


class TestEquilibriumConditions:
    def test_conservation(self):
        model = AffineLatencyModel([0.5, 2.0, 1.0], [1.0, 0.5, 2.0])
        eq = wardrop_equilibrium(model, 5.0)
        assert eq.loads.sum() == pytest.approx(5.0)

    def test_equal_latency_on_used_machines(self):
        model = AffineLatencyModel([0.5, 2.0, 1.0], [1.0, 0.5, 2.0])
        eq = wardrop_equilibrium(model, 5.0)
        used = eq.loads > 1e-9
        latencies = model.per_job(eq.loads)[used]
        assert np.ptp(latencies) / latencies.mean() < 1e-6

    def test_unused_machines_are_no_faster(self):
        # A slow-start machine stays idle at low rates, and its idle
        # latency must be at least the common level.
        model = AffineLatencyModel([0.0, 10.0], [1.0, 1.0])
        eq = wardrop_equilibrium(model, 2.0)
        assert eq.loads[1] == pytest.approx(0.0, abs=1e-9)
        level = model.per_job(eq.loads)[0]
        assert 10.0 >= level

    def test_mm1_equilibrium(self):
        model = MM1LatencyModel([2.0, 4.0])
        eq = wardrop_equilibrium(model, 3.0)
        assert eq.loads.sum() == pytest.approx(3.0)
        latencies = model.per_job(eq.loads)
        assert latencies[0] == pytest.approx(latencies[1], rel=1e-6)

    def test_infeasible_rate_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            wardrop_equilibrium(MM1LatencyModel([1.0, 1.0]), 2.0)


class TestLinearCoincidence:
    """For the paper's zero-intercept model, selfish = optimal (PoA = 1)."""

    def test_equilibrium_equals_pr_allocation(self):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        model = LinearLatencyModel(t)
        eq = wardrop_equilibrium(model, 12.0)
        np.testing.assert_allclose(eq.loads, pr_loads(t, 12.0), rtol=1e-6)

    def test_poa_is_one(self):
        model = LinearLatencyModel([1.0, 2.0, 5.0])
        result = price_of_anarchy(model, 8.0)
        assert result.price_of_anarchy == pytest.approx(1.0, abs=1e-9)

    def test_paper_configuration_poa(self, cluster):
        result = price_of_anarchy(cluster.latency_model(), 20.0)
        assert result.price_of_anarchy == pytest.approx(1.0, abs=1e-9)


class TestPigouAndBounds:
    def test_pigou_attains_four_thirds(self):
        # l1(x) ~ 1 (constant), l2(x) = x, R = 1: the classic worst case.
        model = AffineLatencyModel([1.0, 0.0], [1e-9, 1.0])
        result = price_of_anarchy(model, 1.0)
        assert result.price_of_anarchy == pytest.approx(4.0 / 3.0, rel=1e-4)

    def test_poa_at_least_one(self):
        model = AffineLatencyModel([0.5, 2.0, 1.0], [1.0, 0.5, 2.0])
        result = price_of_anarchy(model, 5.0)
        assert result.price_of_anarchy >= 1.0 - 1e-12

    def test_common_latency_reported(self):
        model = AffineLatencyModel([0.5, 2.0, 1.0], [1.0, 0.5, 2.0])
        result = price_of_anarchy(model, 5.0)
        used = result.equilibrium.loads > 1e-9
        per_job = model.per_job(result.equilibrium.loads)
        assert result.common_latency == pytest.approx(float(per_job[used].mean()))
