"""Unit tests for the utility-landscape analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.landscape import utility_landscape


class TestTruthfulLandscape:
    def test_truth_is_the_global_maximum(self, mechanism, small_true_values):
        landscape = utility_landscape(mechanism, small_true_values, 10.0, 0)
        assert landscape.truth_is_global_max()
        bid_at_max, exec_at_max = landscape.argmax
        assert bid_at_max == pytest.approx(1.0, rel=0.15)
        assert exec_at_max == 1.0

    def test_utility_decreases_away_from_truth_in_execution(
        self, mechanism, small_true_values
    ):
        landscape = utility_landscape(
            mechanism, small_true_values, 10.0, 0,
            bid_factors=np.array([1.0]),
            exec_factors=np.linspace(1.0, 3.0, 9),
        )
        column = landscape.utilities[0]
        assert np.all(np.diff(column) < 0.0)

    def test_landscape_shape(self, mechanism, small_true_values):
        landscape = utility_landscape(
            mechanism, small_true_values, 10.0, 1,
            bid_factors=np.array([0.5, 1.0, 2.0]),
            exec_factors=np.array([1.0, 2.0]),
        )
        assert landscape.utilities.shape == (3, 2)
        assert landscape.agent == 1


class TestDeclaredLandscape:
    def test_maximum_moved_off_truth(self, declared_mechanism, small_true_values):
        landscape = utility_landscape(
            declared_mechanism, small_true_values, 10.0, 0
        )
        assert not landscape.truth_is_global_max()
        bid_at_max, _ = landscape.argmax
        assert bid_at_max > 1.0  # overbidding region


class TestRendering:
    def test_render_contains_grid(self, mechanism, small_true_values):
        landscape = utility_landscape(
            mechanism, small_true_values, 10.0, 0,
            bid_factors=np.array([0.5, 1.0, 2.0]),
            exec_factors=np.array([1.0, 2.0]),
        )
        art = landscape.render()
        assert "exec\\bid" in art
        assert len(art.splitlines()) == 3  # header + one row per exec factor
        assert "#" in art  # the maximum glyph appears somewhere


class TestValidation:
    def test_exec_factor_below_one_rejected(self, mechanism, small_true_values):
        with pytest.raises(ValueError, match="capacity"):
            utility_landscape(
                mechanism, small_true_values, 10.0, 0,
                exec_factors=np.array([0.5, 1.0]),
            )

    def test_agent_index_checked(self, mechanism, small_true_values):
        with pytest.raises(IndexError):
            utility_landscape(mechanism, small_true_values, 10.0, 9)
