"""Unit tests for frugality analysis."""

from __future__ import annotations

import pytest

from repro.analysis import frugality_across_mechanisms, frugality_by_scenario
from repro.mechanism import (
    ArcherTardosMechanism,
    VCGMechanism,
    VerificationMechanism,
)
from repro.system.cluster import paper_cluster


class TestFrugalityByScenario:
    def test_all_scenarios_reported(self):
        records = frugality_by_scenario()
        assert [r.label for r in records] == [
            "True1", "True2", "High1", "High2", "High3", "High4", "Low1", "Low2",
        ]

    def test_true1_within_paper_band(self):
        true1 = frugality_by_scenario()[0]
        assert 1.0 <= true1.ratio <= 2.5

    def test_ratio_property(self):
        record = frugality_by_scenario()[0]
        assert record.ratio == pytest.approx(
            record.total_payment / record.total_valuation
        )


class TestFrugalityAcrossMechanisms:
    def test_all_three_mechanisms_coincide_on_truth(self):
        # At the truthful profile all three payment rules are identical
        # (VCG == AT algebraically; verification == VCG when execution
        # matches bids), so truthful frugality is mechanism-independent.
        t = paper_cluster().true_values
        records = frugality_across_mechanisms(
            {
                "verification": VerificationMechanism(),
                "vcg": VCGMechanism(),
                "archer-tardos": ArcherTardosMechanism(),
            },
            t,
            20.0,
        )
        ratios = [r.ratio for r in records]
        assert ratios[0] == pytest.approx(ratios[1])
        assert ratios[1] == pytest.approx(ratios[2])
        assert 1.0 <= ratios[0] <= 2.5

    def test_labels_preserved(self):
        records = frugality_across_mechanisms(
            {"only": VerificationMechanism()}, paper_cluster().true_values, 20.0
        )
        assert records[0].label == "only"
