"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.table1 import table1_configuration
from repro.mechanism import (
    ArcherTardosMechanism,
    VCGMechanism,
    VerificationMechanism,
)
from repro.system.cluster import paper_cluster


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator; tests must not use global state."""
    return np.random.default_rng(20030422)  # IPDPS 2003 conference date


@pytest.fixture
def cluster():
    """The paper's 16-machine Table 1 cluster."""
    return paper_cluster()


@pytest.fixture
def config():
    """The full Table 1 configuration (cluster + arrival rate 20)."""
    return table1_configuration()


@pytest.fixture
def mechanism() -> VerificationMechanism:
    """The paper's mechanism with the formal (observed) compensation."""
    return VerificationMechanism()


@pytest.fixture
def declared_mechanism() -> VerificationMechanism:
    """The non-truthful declared-compensation variant."""
    return VerificationMechanism("declared")


@pytest.fixture
def vcg() -> VCGMechanism:
    return VCGMechanism()


@pytest.fixture
def archer_tardos() -> ArcherTardosMechanism:
    return ArcherTardosMechanism()


@pytest.fixture
def small_true_values() -> np.ndarray:
    """A 4-machine system small enough for exhaustive deviation scans."""
    return np.array([1.0, 2.0, 5.0, 10.0])
