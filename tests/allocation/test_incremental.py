"""Unit and property tests for the incremental PR state."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import optimal_total_latency, optimal_latency_without, pr_loads
from repro.allocation.incremental import IncrementalPRState


class TestQueries:
    def test_matches_batch_formulas_initially(self):
        bids = np.array([1.0, 2.0, 5.0])
        state = IncrementalPRState(bids, 9.0)
        assert state.optimal_latency() == pytest.approx(
            optimal_total_latency(bids, 9.0)
        )
        np.testing.assert_allclose(state.loads(), pr_loads(bids, 9.0))
        for i in range(3):
            assert state.load_of(i) == pytest.approx(pr_loads(bids, 9.0)[i])
            assert state.latency_without(i) == pytest.approx(
                optimal_latency_without(bids, i, 9.0)
            )

    def test_bids_returns_a_copy(self):
        state = IncrementalPRState(np.array([1.0, 2.0]), 5.0)
        state.bids[0] = 99.0
        assert state.bids[0] == 1.0


class TestUpdates:
    def test_update_bid_matches_fresh_state(self):
        state = IncrementalPRState(np.array([1.0, 2.0, 5.0]), 9.0)
        state.update_bid(1, 3.0)
        fresh = np.array([1.0, 3.0, 5.0])
        assert state.optimal_latency() == pytest.approx(
            optimal_total_latency(fresh, 9.0)
        )
        np.testing.assert_allclose(state.loads(), pr_loads(fresh, 9.0))

    def test_add_machine(self):
        state = IncrementalPRState(np.array([1.0, 2.0]), 6.0)
        index = state.add_machine(4.0)
        assert index == 2
        assert state.n_machines == 3
        assert state.optimal_latency() == pytest.approx(
            optimal_total_latency([1.0, 2.0, 4.0], 6.0)
        )

    def test_remove_machine(self):
        state = IncrementalPRState(np.array([1.0, 2.0, 4.0]), 6.0)
        state.remove_machine(1)
        assert state.n_machines == 2
        assert state.optimal_latency() == pytest.approx(
            optimal_total_latency([1.0, 4.0], 6.0)
        )

    def test_cannot_remove_last_machine(self):
        state = IncrementalPRState(np.array([1.0]), 6.0)
        with pytest.raises(ValueError, match="last machine"):
            state.remove_machine(0)

    def test_leave_one_out_needs_two(self):
        state = IncrementalPRState(np.array([1.0]), 6.0)
        with pytest.raises(ValueError, match="two machines"):
            state.latency_without(0)


class TestNumericalDrift:
    def test_hundred_thousand_updates_stay_exact(self):
        rng = np.random.default_rng(0)
        bids = rng.uniform(0.5, 10.0, size=32)
        state = IncrementalPRState(bids.copy(), 20.0)
        current = bids.copy()
        for _ in range(100_000):
            i = int(rng.integers(0, 32))
            b = float(rng.uniform(0.5, 10.0))
            state.update_bid(i, b)
            current[i] = b
        assert state.total_inverse == pytest.approx(
            float(np.sum(1.0 / current)), rel=1e-12
        )

    def test_manual_refresh(self):
        state = IncrementalPRState(np.array([1.0, 2.0]), 5.0, refresh_every=10**9)
        state.update_bid(0, 3.0)
        state.refresh()
        assert state.total_inverse == pytest.approx(1 / 3 + 1 / 2)


class TestPropertyEquivalence:
    @settings(max_examples=100)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 12),
        steps=st.integers(1, 30),
    )
    def test_random_update_sequences_match_scratch(self, seed, n, steps):
        rng = np.random.default_rng(seed)
        bids = rng.uniform(0.1, 20.0, size=n)
        state = IncrementalPRState(bids.copy(), 7.0)
        for _ in range(steps):
            i = int(rng.integers(0, bids.size))
            b = float(rng.uniform(0.1, 20.0))
            state.update_bid(i, b)
            bids[i] = b
        assert state.optimal_latency() == pytest.approx(
            optimal_total_latency(bids, 7.0), rel=1e-9
        )
        i = int(rng.integers(0, bids.size))
        assert state.latency_without(i) == pytest.approx(
            optimal_latency_without(bids, i, 7.0), rel=1e-9
        )


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            IncrementalPRState(np.array([]), 5.0)
        with pytest.raises(ValueError):
            IncrementalPRState(np.array([0.0]), 5.0)
        with pytest.raises(ValueError):
            IncrementalPRState(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            IncrementalPRState(np.array([1.0]), 5.0, refresh_every=0)
