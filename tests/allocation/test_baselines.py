"""Unit tests for the naive dispatcher baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import pr_loads, water_filling_allocation
from repro.allocation.baselines import (
    capacity_proportional_split,
    equal_split,
    greedy_marginal_split,
    random_split,
)
from repro.latency import LinearLatencyModel, MM1LatencyModel
from repro.system.cluster import paper_cluster


@pytest.fixture
def linear_model():
    return LinearLatencyModel(paper_cluster().true_values)


class TestEqualSplit:
    def test_uniform_loads(self, linear_model):
        result = equal_split(linear_model, 20.0)
        np.testing.assert_allclose(result.loads, 20.0 / 16)

    def test_worse_than_optimum_on_heterogeneous_systems(self, linear_model):
        naive = equal_split(linear_model, 20.0)
        optimum = 400.0 / 5.1
        assert naive.total_latency > optimum

    def test_overload_detected_on_queueing_systems(self):
        model = MM1LatencyModel([10.0, 0.4])
        with pytest.raises(ValueError, match="overloads machine 1"):
            equal_split(model, 2.0)

    def test_optimal_on_homogeneous_systems(self):
        model = LinearLatencyModel([2.0, 2.0, 2.0])
        result = equal_split(model, 9.0)
        assert result.total_latency == pytest.approx(
            water_filling_allocation(model, 9.0).total_latency
        )


class TestCapacityProportional:
    def test_equals_pr_for_linear_latencies(self, linear_model):
        # A known coincidence of the linear class (Wardrop = optimum).
        result = capacity_proportional_split(linear_model, 20.0)
        np.testing.assert_allclose(
            result.loads, pr_loads(paper_cluster().true_values, 20.0)
        )

    def test_not_optimal_for_mm1(self):
        # ... and precisely *not* a coincidence that survives M/M/1.
        model = MM1LatencyModel([2.0, 10.0])
        proportional = capacity_proportional_split(model, 6.0)
        optimum = water_filling_allocation(model, 6.0)
        assert proportional.total_latency > optimum.total_latency * 1.0001

    def test_conservation(self, linear_model):
        result = capacity_proportional_split(linear_model, 20.0)
        assert result.loads.sum() == pytest.approx(20.0)


class TestRandomSplit:
    def test_feasible_and_conserving(self, linear_model, rng):
        result = random_split(linear_model, 20.0, rng)
        assert result.loads.sum() == pytest.approx(20.0)
        assert np.all(result.loads >= 0.0)

    def test_respects_finite_capacity(self, rng):
        model = MM1LatencyModel([3.0, 3.0])
        result = random_split(model, 4.0, rng)
        assert np.all(result.loads < model.load_capacity())

    def test_never_beats_the_optimum(self, linear_model, rng):
        optimum = water_filling_allocation(linear_model, 20.0).total_latency
        for _ in range(25):
            result = random_split(linear_model, 20.0, rng)
            assert result.total_latency >= optimum - 1e-9

    def test_impossible_load_raises(self, rng):
        model = MM1LatencyModel([1.0, 1.0])
        with pytest.raises(RuntimeError, match="feasible"):
            random_split(model, 1.999, rng)


class TestGreedyMarginal:
    def test_converges_to_optimum_linear(self, linear_model):
        greedy = greedy_marginal_split(linear_model, 20.0, n_chunks=4000)
        optimum = 400.0 / 5.1
        assert greedy.total_latency == pytest.approx(optimum, rel=1e-4)

    def test_converges_to_optimum_mm1(self):
        model = MM1LatencyModel([2.0, 4.0, 8.0])
        greedy = greedy_marginal_split(model, 9.0, n_chunks=4000)
        optimum = water_filling_allocation(model, 9.0)
        assert greedy.total_latency == pytest.approx(
            optimum.total_latency, rel=1e-4
        )

    def test_gap_shrinks_with_chunk_count(self, linear_model):
        coarse = greedy_marginal_split(linear_model, 20.0, n_chunks=50)
        fine = greedy_marginal_split(linear_model, 20.0, n_chunks=2000)
        optimum = 400.0 / 5.1
        assert abs(fine.total_latency - optimum) < abs(
            coarse.total_latency - optimum
        )

    def test_respects_capacity(self):
        model = MM1LatencyModel([1.2, 10.0])
        result = greedy_marginal_split(model, 8.0, n_chunks=500)
        assert np.all(result.loads < model.load_capacity())

    def test_overload_raises(self):
        model = MM1LatencyModel([1.0, 1.0])
        with pytest.raises(ValueError, match="absorb"):
            greedy_marginal_split(model, 2.5, n_chunks=100)

    def test_chunk_validation(self, linear_model):
        with pytest.raises(ValueError):
            greedy_marginal_split(linear_model, 20.0, n_chunks=0)
