"""Cross-checks of the analytic allocators against the SLSQP reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import (
    pr_loads,
    scipy_allocation,
    water_filling_allocation,
)
from repro.latency import LinearLatencyModel, MG1LatencyModel, MM1LatencyModel


class TestAgainstScipy:
    def test_linear_agrees(self):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        model = LinearLatencyModel(t)
        reference = scipy_allocation(model, 12.0)
        np.testing.assert_allclose(
            reference.loads, pr_loads(t, 12.0), rtol=1e-5, atol=1e-6
        )

    def test_mm1_agrees(self):
        model = MM1LatencyModel([2.0, 4.0, 8.0])
        ours = water_filling_allocation(model, 9.0)
        reference = scipy_allocation(model, 9.0)
        assert reference.total_latency == pytest.approx(
            ours.total_latency, rel=1e-6
        )

    def test_mg1_agrees(self):
        model = MG1LatencyModel.exponential([2.0, 4.0])
        ours = water_filling_allocation(model, 3.5)
        reference = scipy_allocation(model, 3.5)
        assert reference.total_latency == pytest.approx(
            ours.total_latency, rel=1e-6
        )

    def test_paper_configuration_agrees(self):
        t = np.array([1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10.0])
        model = LinearLatencyModel(t)
        reference = scipy_allocation(model, 20.0)
        assert reference.total_latency == pytest.approx(400.0 / 5.1, rel=1e-6)

    def test_reference_respects_conservation(self):
        model = LinearLatencyModel([1.0, 3.0])
        reference = scipy_allocation(model, 5.0)
        assert reference.loads.sum() == pytest.approx(5.0)

    def test_reference_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            scipy_allocation(LinearLatencyModel([1.0]), -1.0)
