"""Unit tests for the PR algorithm (Theorem 2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import (
    optimal_latency_excluding_each,
    optimal_latency_without,
    optimal_total_latency,
    pr_allocation,
    pr_loads,
)


class TestPrLoads:
    def test_equal_machines_split_equally(self):
        np.testing.assert_allclose(pr_loads([2.0, 2.0, 2.0], 9.0), [3.0, 3.0, 3.0])

    def test_proportional_to_processing_rate(self):
        # rates 1 and 1/3 -> loads 3:1
        np.testing.assert_allclose(pr_loads([1.0, 3.0], 8.0), [6.0, 2.0])

    def test_conservation(self):
        loads = pr_loads([1.0, 2.0, 5.0, 10.0], 13.7)
        assert loads.sum() == pytest.approx(13.7)

    def test_positivity(self):
        loads = pr_loads([1.0, 1000.0], 1.0)
        assert np.all(loads > 0.0)

    def test_faster_machine_gets_more(self):
        loads = pr_loads([1.0, 2.0], 10.0)
        assert loads[0] > loads[1]

    def test_single_machine_gets_everything(self):
        np.testing.assert_allclose(pr_loads([7.0], 4.0), [4.0])

    def test_scale_invariance_in_t(self):
        # Scaling all slopes by a constant does not change the split.
        a = pr_loads([1.0, 2.0, 3.0], 5.0)
        b = pr_loads([10.0, 20.0, 30.0], 5.0)
        np.testing.assert_allclose(a, b)

    def test_linear_in_arrival_rate(self):
        a = pr_loads([1.0, 2.0], 5.0)
        b = pr_loads([1.0, 2.0], 10.0)
        np.testing.assert_allclose(2 * a, b)

    def test_rejects_nonpositive_bids(self):
        with pytest.raises(ValueError):
            pr_loads([1.0, 0.0], 5.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            pr_loads([1.0], 0.0)


class TestOptimality:
    """The PR allocation minimises L among feasible allocations."""

    def test_closed_form_latency(self):
        # L* = R^2 / sum(1/t)
        assert optimal_total_latency([1.0, 1.0], 10.0) == pytest.approx(50.0)

    def test_paper_value(self):
        t = [1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10]
        assert optimal_total_latency(t, 20.0) == pytest.approx(400.0 / 5.1)

    def test_beats_random_feasible_allocations(self):
        rng = np.random.default_rng(3)
        t = np.array([1.0, 2.0, 5.0, 10.0])
        rate = 12.0
        best = optimal_total_latency(t, rate)
        for _ in range(200):
            x = rng.dirichlet(np.ones(4)) * rate
            assert float(np.dot(t, x**2)) >= best - 1e-9

    def test_kkt_equal_marginals(self):
        # At the optimum every machine has equal marginal 2 t x.
        t = np.array([1.0, 2.0, 5.0])
        x = pr_loads(t, 7.0)
        marginals = 2 * t * x
        assert np.ptp(marginals) < 1e-9


class TestAllocationResult:
    def test_packaged_fields(self):
        result = pr_allocation([1.0, 3.0], 8.0)
        np.testing.assert_allclose(result.loads, [6.0, 2.0])
        assert result.arrival_rate == 8.0
        np.testing.assert_allclose(result.bids, [1.0, 3.0])
        assert result.total_latency == pytest.approx(36.0 + 12.0)

    def test_total_latency_consistent_with_loads(self):
        result = pr_allocation([1.0, 2.0, 5.0], 11.0)
        recomputed = float(np.dot(result.bids, result.loads**2))
        assert result.total_latency == pytest.approx(recomputed)


class TestLeaveOneOut:
    def test_vectorised_matches_scalar(self):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        all_excluded = optimal_latency_excluding_each(t, 9.0)
        for i in range(4):
            assert all_excluded[i] == pytest.approx(
                optimal_latency_without(t, i, 9.0)
            )

    def test_matches_direct_recomputation(self):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        for i in range(4):
            rest = np.delete(t, i)
            assert optimal_latency_without(t, i, 9.0) == pytest.approx(
                optimal_total_latency(rest, 9.0)
            )

    def test_excluding_fast_machine_hurts_more(self):
        t = np.array([1.0, 10.0, 10.0])
        excluded = optimal_latency_excluding_each(t, 5.0)
        assert excluded[0] > excluded[1]

    def test_exclusion_never_helps(self):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        base = optimal_total_latency(t, 9.0)
        assert np.all(optimal_latency_excluding_each(t, 9.0) >= base)

    def test_single_machine_rejected(self):
        with pytest.raises(ValueError, match="two machines"):
            optimal_latency_excluding_each([1.0], 5.0)
        with pytest.raises(ValueError, match="two machines"):
            optimal_latency_without([1.0], 0, 5.0)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            optimal_latency_without([1.0, 2.0], 2, 5.0)
