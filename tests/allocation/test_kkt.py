"""Unit tests for the water-filling allocator on all latency models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import pr_loads, water_filling_allocation
from repro.latency import LinearLatencyModel, MG1LatencyModel, MM1LatencyModel


class TestLinearModel:
    def test_matches_pr_closed_form(self):
        t = np.array([1.0, 2.0, 5.0, 10.0])
        model = LinearLatencyModel(t)
        result = water_filling_allocation(model, 13.0)
        np.testing.assert_allclose(result.loads, pr_loads(t, 13.0), rtol=1e-10)

    def test_paper_configuration(self):
        t = np.array([1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10.0])
        result = water_filling_allocation(LinearLatencyModel(t), 20.0)
        assert result.total_latency == pytest.approx(400.0 / 5.1, rel=1e-10)

    def test_conservation_is_exact(self):
        model = LinearLatencyModel([1.3, 2.7, 9.1])
        result = water_filling_allocation(model, 4.321)
        assert result.loads.sum() == pytest.approx(4.321, abs=1e-12)


class TestMM1Model:
    def test_conservation(self):
        model = MM1LatencyModel([2.0, 4.0, 8.0])
        result = water_filling_allocation(model, 10.0)
        assert result.loads.sum() == pytest.approx(10.0)

    def test_loads_below_capacity(self):
        model = MM1LatencyModel([2.0, 4.0, 8.0])
        result = water_filling_allocation(model, 13.0)
        assert np.all(result.loads < model.mu)

    def test_slow_machines_excluded_at_light_load(self):
        # At very light load the fast machine's zero-load marginal
        # (1/mu) is below the slow machine's, so only it gets traffic.
        model = MM1LatencyModel([100.0, 1.0])
        result = water_filling_allocation(model, 0.001)
        assert result.loads[1] == pytest.approx(0.0, abs=1e-9)
        assert result.loads[0] == pytest.approx(0.001)

    def test_equal_marginals_on_loaded_machines(self):
        model = MM1LatencyModel([2.0, 3.0, 5.0])
        result = water_filling_allocation(model, 6.0)
        loaded = result.loads > 1e-9
        marginals = model.marginal(result.loads)[loaded]
        assert np.ptp(marginals) / marginals.mean() < 1e-6

    def test_infeasible_rate_rejected(self):
        model = MM1LatencyModel([1.0, 1.0])
        with pytest.raises(ValueError, match="capacity"):
            water_filling_allocation(model, 2.0)


class TestMG1Model:
    def test_conservation(self):
        model = MG1LatencyModel.exponential([2.0, 4.0])
        result = water_filling_allocation(model, 3.0)
        assert result.loads.sum() == pytest.approx(3.0)

    def test_beats_random_feasible_allocations(self):
        rng = np.random.default_rng(11)
        model = MG1LatencyModel.exponential([2.0, 4.0, 8.0])
        rate = 7.0
        result = water_filling_allocation(model, rate)
        for _ in range(100):
            x = rng.dirichlet(np.ones(3)) * rate
            if np.any(x >= model.load_capacity()):
                continue
            assert model.total_latency(x) >= result.total_latency - 1e-7

    def test_light_load_matches_linearised_split(self):
        model = MG1LatencyModel.exponential([2.0, 4.0])
        linear = model.light_load_linearization()
        rate = 1e-4
        exact = water_filling_allocation(model, rate).loads
        approx = water_filling_allocation(linear, rate).loads
        np.testing.assert_allclose(exact, approx, rtol=1e-3)


class TestValidation:
    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            water_filling_allocation(LinearLatencyModel([1.0]), 0.0)
