"""Unit tests for the distributed verification mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import (
    DistributedVerificationMechanism,
    random_tree_overlay,
    star_overlay,
    tree_overlay,
)
from repro.mechanism import VerificationMechanism
from repro.system.cluster import paper_cluster


@pytest.fixture
def scenario():
    """Bids/executions of the Low2 experiment on the paper cluster."""
    t = paper_cluster().true_values
    bids = t.copy()
    bids[0] = 0.5
    executions = t.copy()
    executions[0] = 2.0
    return t, bids, executions


class TestEquivalenceWithCentralised:
    @pytest.mark.parametrize("shape", ["star", "binary", "chain", "random"])
    def test_payments_identical(self, scenario, shape, rng):
        t, bids, executions = scenario
        overlay = {
            "star": star_overlay(16),
            "binary": tree_overlay(16, arity=2),
            "chain": tree_overlay(16, arity=1),
            "random": random_tree_overlay(16, rng),
        }[shape]
        central = VerificationMechanism().run(bids, 20.0, executions)
        distributed = DistributedVerificationMechanism(overlay).run(
            bids, 20.0, executions
        )
        np.testing.assert_allclose(
            distributed.outcome.payments.payment,
            central.payments.payment,
            rtol=1e-10,
        )
        np.testing.assert_allclose(
            distributed.outcome.loads, central.loads, rtol=1e-12
        )

    def test_realised_latency_matches(self, scenario):
        t, bids, executions = scenario
        central = VerificationMechanism().run(bids, 20.0, executions)
        distributed = DistributedVerificationMechanism().run(bids, 20.0, executions)
        assert distributed.outcome.realised_latency == pytest.approx(
            central.realised_latency
        )

    def test_default_overlay_built_on_demand(self, scenario):
        t, bids, executions = scenario
        outcome = DistributedVerificationMechanism().run(bids, 20.0, executions)
        assert outcome.outcome.allocation.n_machines == 16


class TestMessageComplexity:
    def test_four_messages_per_machine(self, scenario):
        t, bids, executions = scenario
        result = DistributedVerificationMechanism(star_overlay(16)).run(
            bids, 20.0, executions
        )
        # Two aggregation rounds of 2n messages each.
        assert result.total_messages == 4 * 16
        assert result.messages_per_machine == 4.0

    def test_message_count_independent_of_shape(self, scenario, rng):
        t, bids, executions = scenario
        counts = set()
        for overlay in (
            star_overlay(16), tree_overlay(16), random_tree_overlay(16, rng)
        ):
            result = DistributedVerificationMechanism(overlay).run(
                bids, 20.0, executions
            )
            counts.add(result.total_messages)
        assert counts == {64}

    def test_latency_depends_on_shape(self, scenario):
        t, bids, executions = scenario
        star = DistributedVerificationMechanism(star_overlay(16)).run(
            bids, 20.0, executions
        )
        chain = DistributedVerificationMechanism(tree_overlay(16, arity=1)).run(
            bids, 20.0, executions
        )
        assert star.rounds_of_latency < chain.rounds_of_latency


class TestPrivacyMode:
    def test_payments_match_within_masking_noise(self, scenario, rng):
        t, bids, executions = scenario
        central = VerificationMechanism().run(bids, 20.0, executions)
        private = DistributedVerificationMechanism(
            tree_overlay(16), n_aggregators=3, rng=rng
        ).run(bids, 20.0, executions)
        np.testing.assert_allclose(
            private.outcome.payments.payment,
            central.payments.payment,
            atol=1e-5,  # float cancellation against the 1e6 masks
        )

    def test_share_accounting(self, scenario, rng):
        t, bids, executions = scenario
        result = DistributedVerificationMechanism(
            tree_overlay(16), n_aggregators=3, rng=rng
        ).run(bids, 20.0, executions)
        # Two rounds, 16 contributions each, 3 shares per contribution.
        assert result.privacy_shares_sent == 2 * 16 * 3

    def test_privacy_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            DistributedVerificationMechanism(n_aggregators=2)


class TestValidation:
    def test_single_machine_rejected(self):
        with pytest.raises(ValueError, match="two machines"):
            DistributedVerificationMechanism().run(np.array([1.0]), 5.0)

    def test_overlay_size_mismatch(self):
        with pytest.raises(ValueError, match="overlay"):
            DistributedVerificationMechanism(star_overlay(3)).run(
                np.array([1.0, 2.0]), 5.0
            )

    def test_metadata_records_privacy_setting(self, scenario, rng):
        t, bids, executions = scenario
        result = DistributedVerificationMechanism(
            star_overlay(16), n_aggregators=2, rng=rng
        ).run(bids, 20.0, executions)
        assert result.outcome.metadata["privacy"] == 2
