"""Unit tests for additive secret sharing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import SecureSumAggregation, reconstruct_sum, share_additively


class TestShares:
    def test_shares_sum_to_value(self, rng):
        for value in (-3.5, 0.0, 42.0):
            shares = share_additively(value, 5, rng)
            assert shares.sum() == pytest.approx(value, abs=1e-9)

    def test_single_share_degenerates_to_value(self, rng):
        shares = share_additively(7.0, 1, rng)
        assert shares.tolist() == [7.0]

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            share_additively(1.0, 0, rng)
        with pytest.raises(ValueError):
            share_additively(1.0, 2, rng, mask_scale=0.0)

    def test_individual_share_carries_no_signal(self):
        # Across many draws, the correlation between the secret and any
        # single masked share must vanish (statistical hiding).
        rng = np.random.default_rng(0)
        secrets = rng.uniform(0.0, 10.0, size=4000)
        first_shares = np.array(
            [share_additively(v, 3, rng, mask_scale=1e4)[0] for v in secrets]
        )
        correlation = np.corrcoef(secrets, first_shares)[0, 1]
        assert abs(correlation) < 0.05

    def test_residual_share_alone_is_masked(self):
        rng = np.random.default_rng(1)
        secrets = rng.uniform(0.0, 10.0, size=4000)
        last_shares = np.array(
            [share_additively(v, 3, rng, mask_scale=1e4)[-1] for v in secrets]
        )
        correlation = np.corrcoef(secrets, last_shares)[0, 1]
        assert abs(correlation) < 0.05


class TestSecureSumAggregation:
    def test_result_is_exact_sum(self, rng):
        secure = SecureSumAggregation(3, rng, mask_scale=1e3)
        values = [1.5, -2.0, 10.0, 0.25]
        for v in values:
            secure.contribute(v)
        assert secure.result() == pytest.approx(sum(values), abs=1e-9)
        assert secure.n_contributions == 4

    def test_message_count(self, rng):
        secure = SecureSumAggregation(4, rng)
        for v in range(10):
            secure.contribute(float(v))
        assert secure.messages_sent() == 40

    def test_single_aggregator_view_is_not_the_sum(self, rng):
        # With k >= 2, no single aggregator holds the true sum.
        secure = SecureSumAggregation(2, rng, mask_scale=1e6)
        secure.contribute(5.0)
        view = secure.aggregator_view(0)
        assert abs(view - 5.0) > 1.0  # masked far away with high probability

    def test_invalid_aggregator_count(self, rng):
        with pytest.raises(ValueError):
            SecureSumAggregation(0, rng)

    def test_reconstruct_sum_helper(self):
        assert reconstruct_sum(np.array([1.0, 2.0, -0.5])) == pytest.approx(2.5)
