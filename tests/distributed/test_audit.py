"""Unit tests for the aggregation-tampering audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import random_tree_overlay, star_overlay, tree_sum
from repro.distributed.audit import (
    double_tree_check,
    tree_sum_with_relay_faults,
)


class TestFaultInjectionPrimitive:
    def test_no_faults_matches_plain_tree_sum(self, rng):
        overlay = random_tree_overlay(12, rng)
        values = rng.uniform(0.0, 5.0, size=12)
        plain, _stats = tree_sum(overlay, values)
        faulty = tree_sum_with_relay_faults(overlay, values, None)
        assert faulty == pytest.approx(plain)

    def test_relay_bias_shifts_the_total(self, rng):
        overlay = star_overlay(4)
        values = np.ones(4)
        # In a star every machine is a leaf relay of its own value.
        total = tree_sum_with_relay_faults(
            overlay, values, {0: lambda s: s + 10.0}
        )
        assert total == pytest.approx(14.0)

    def test_length_checked(self, rng):
        overlay = star_overlay(3)
        with pytest.raises(ValueError):
            tree_sum_with_relay_faults(overlay, np.ones(4))


class TestDoubleTreeCheck:
    def test_honest_runs_agree(self, rng):
        values = rng.uniform(0.0, 10.0, size=20)
        check = double_tree_check(values, rng)
        assert check.consistent
        assert check.agreed_total == pytest.approx(float(values.sum()))

    def test_multiplicative_skimming_detected(self):
        # Corruption proportional to the forwarded subtotal roots
        # different subtrees in the two draws -> totals disagree.
        values = np.arange(1.0, 21.0)
        detections = 0
        for seed in range(20):
            rng = np.random.default_rng(seed)
            check = double_tree_check(
                values, rng, relay_bias={3: lambda s: 0.9 * s}
            )
            detections += not check.consistent
        assert detections >= 18  # whp, across seeds

    def test_constant_additive_bias_escapes(self, rng):
        # The documented boundary: position-independent corruption is
        # indistinguishable from input corruption.
        values = np.arange(1.0, 11.0)
        check = double_tree_check(
            values, rng, relay_bias={2: lambda s: s + 5.0}
        )
        assert check.consistent  # consistent... and consistently wrong
        assert check.agreed_total == pytest.approx(values.sum() + 5.0)

    def test_lying_leaf_escapes(self, rng):
        # A machine misreporting its own value corrupts the *input*;
        # no aggregation-level check can see it.
        honest = np.arange(1.0, 11.0)
        lied = honest.copy()
        lied[4] *= 3.0
        check = double_tree_check(lied, rng)
        assert check.consistent
        assert check.agreed_total != pytest.approx(float(honest.sum()))

    def test_tolerance_absorbs_float_noise(self, rng):
        values = rng.uniform(0.0, 1.0, size=50)
        check = double_tree_check(values, rng, tolerance=1e-9)
        assert check.consistent
