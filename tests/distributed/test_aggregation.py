"""Unit tests for tree aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import random_tree_overlay, star_overlay, tree_overlay, tree_sum


class TestCorrectness:
    @pytest.mark.parametrize("make", [star_overlay, tree_overlay])
    def test_sum_is_exact(self, make, rng):
        overlay = make(12)
        values = rng.uniform(-5.0, 5.0, size=12)
        total, _stats = tree_sum(overlay, values)
        assert total == pytest.approx(values.sum(), rel=1e-12)

    def test_random_overlay_sum(self, rng):
        overlay = random_tree_overlay(25, rng)
        values = rng.uniform(0.0, 1.0, size=25)
        total, _ = tree_sum(overlay, values)
        assert total == pytest.approx(values.sum())

    def test_root_value_included(self):
        overlay = star_overlay(3)
        total, _ = tree_sum(overlay, np.ones(3), root_value=10.0)
        assert total == pytest.approx(13.0)

    def test_length_mismatch_rejected(self):
        overlay = star_overlay(3)
        with pytest.raises(ValueError, match="one entry per machine"):
            tree_sum(overlay, np.ones(4))


class TestMessageAccounting:
    @pytest.mark.parametrize("n", [1, 5, 16, 64])
    def test_two_messages_per_edge(self, n, rng):
        for overlay in (star_overlay(n), tree_overlay(n), random_tree_overlay(n, rng)):
            _, stats = tree_sum(overlay, np.ones(n))
            assert stats.messages_up == overlay.n_edges
            assert stats.messages_down == overlay.n_edges
            assert stats.total_messages == 2 * n  # n edges in any shape

    def test_latency_is_twice_the_depth(self):
        star = star_overlay(16)
        chain = tree_overlay(16, arity=1)
        _, star_stats = tree_sum(star, np.ones(16))
        _, chain_stats = tree_sum(chain, np.ones(16))
        assert star_stats.rounds_of_latency == 2
        assert chain_stats.rounds_of_latency == 32
