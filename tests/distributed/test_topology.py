"""Unit tests for the overlay topologies."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.distributed import random_tree_overlay, star_overlay, tree_overlay
from repro.distributed.topology import ROOT, Overlay


class TestStarOverlay:
    def test_shape(self):
        overlay = star_overlay(5)
        assert overlay.n_machines == 5
        assert overlay.n_edges == 5
        assert overlay.depth() == 1

    def test_all_machines_children_of_root(self):
        overlay = star_overlay(4)
        assert sorted(overlay.children(ROOT)) == [0, 1, 2, 3]

    def test_single_machine(self):
        assert star_overlay(1).n_machines == 1

    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError):
            star_overlay(0)


class TestTreeOverlay:
    def test_binary_tree_depth_logarithmic(self):
        overlay = tree_overlay(30, arity=2)
        assert overlay.n_machines == 30
        assert overlay.depth() <= 5  # ~log2(30) + 1

    def test_unary_tree_is_a_chain(self):
        overlay = tree_overlay(5, arity=1)
        assert overlay.depth() == 5

    def test_every_node_has_at_most_arity_children(self):
        overlay = tree_overlay(50, arity=3)
        for node in overlay.graph.nodes:
            assert len(overlay.children(node)) <= 3

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            tree_overlay(5, arity=0)


class TestRandomTreeOverlay:
    def test_is_a_tree(self, rng):
        overlay = random_tree_overlay(40, rng)
        assert nx.is_tree(overlay.graph)
        assert overlay.n_machines == 40

    def test_reproducible(self):
        a = random_tree_overlay(20, np.random.default_rng(5))
        b = random_tree_overlay(20, np.random.default_rng(5))
        assert set(a.graph.edges) == set(b.graph.edges)


class TestOverlayOperations:
    def test_bottom_up_order_children_first(self):
        overlay = tree_overlay(10, arity=2)
        order = overlay.bottom_up_order()
        position = {node: k for k, node in enumerate(order)}
        for child, parent in overlay.parent.items():
            assert position[child] < position[parent]
        assert order[-1] == ROOT

    def test_top_down_order_parents_first(self):
        overlay = tree_overlay(10, arity=2)
        order = overlay.top_down_order()
        position = {node: k for k, node in enumerate(order)}
        for child, parent in overlay.parent.items():
            assert position[parent] < position[child]
        assert order[0] == ROOT

    def test_non_tree_rejected(self):
        graph = nx.cycle_graph(4)
        graph.add_node(ROOT)
        graph.add_edge(ROOT, 0)
        with pytest.raises(ValueError, match="tree"):
            Overlay(graph=graph, parent={})

    def test_missing_root_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError, match="root"):
            Overlay(graph=graph, parent={})
