"""Unit tests for one coordinator shard (repro.distributed.shard)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import TruthfulAgent
from repro.distributed import CoordinatorShard, ShardCrash, partition_names
from repro.resilience import CheckpointStore


def make_shard(values=(1.0, 2.0, 4.0), store=None, **kwargs):
    names = [f"C{i + 1}" for i in range(len(values))]
    return CoordinatorShard(
        0,
        names,
        [TruthfulAgent(t) for t in values],
        7.0,
        rng=np.random.default_rng(3),
        checkpoint_store=store,
        **kwargs,
    )


class TestPartitionNames:
    def test_contiguous_and_balanced(self):
        names = [f"C{i}" for i in range(10)]
        parts = partition_names(names, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert [n for p in parts for n in p] == names

    @pytest.mark.parametrize("n_shards", [1, 2, 7])
    def test_concatenation_restores_global_order(self, n_shards):
        names = [f"C{i}" for i in range(7)]
        parts = partition_names(names, n_shards)
        assert [n for p in parts for n in p] == names

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError, match="cannot spread"):
            partition_names(["a", "b"], 3)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            partition_names(["a"], 0)


class TestRoundStages:
    def test_bids_allocation_and_quotients(self):
        shard = make_shard()
        shard.begin_round()
        bids = shard.collect_bids()
        assert np.array_equal(bids, [1.0, 2.0, 4.0])
        # Global S for these three members alone: 1 + 1/2 + 1/4.
        loads = shard.allocate_from_total(1.75)
        assert np.allclose(loads, 7.0 * np.array([1.0, 0.5, 0.25]) / 1.75)
        partial, meta = shard.run_execution(include_payload=True)
        # Deterministic service: estimates equal the true values, so the
        # quotient partial is sum t_i / b_i^2 = 1 + 2/4 + 4/16 = 1.75.
        assert partial.quotient_sum.value == pytest.approx(1.75)
        assert meta["alerts"] == []

    def test_bid_overrides_only_raise(self):
        shard = make_shard(bid_overrides={"C1": 3.0, "C3": 0.1})
        shard.begin_round()
        bids = shard.collect_bids()
        assert np.array_equal(bids, [3.0, 2.0, 4.0])  # C3's lowball ignored

    def test_settle_is_write_ahead_and_at_most_once(self):
        store = CheckpointStore()
        shard = make_shard(store=store)
        shard.begin_round()
        shard.collect_bids()
        shard.allocate_from_total(1.75)
        shard.run_execution()
        amounts = {n: (1.0, 0.5, 0.5) for n in shard.machine_names}
        shard.settle(amounts)
        # A second settle (the service's recovery re-map) sends nothing.
        shard.settle(amounts)
        assert all(c == 1 for c in shard.payment_notices.values())
        ckpt = store.load()
        assert set(ckpt.payments_sent) == set(shard.machine_names)

    def test_crash_hook_persists_ledger_before_raising(self):
        store = CheckpointStore()
        shard = make_shard(store=store, fail_after_payments=1)
        shard.begin_round()
        shard.collect_bids()
        shard.allocate_from_total(1.75)
        shard.run_execution()
        amounts = {n: (1.0, 0.5, 0.5) for n in shard.machine_names}
        with pytest.raises(ShardCrash):
            shard.settle(amounts)
        assert len(store.load().payments_sent) == 1


class TestMembershipCaching:
    """The PR-4 reset-path contract, shard edition (ISSUE 7 satellite)."""

    def test_set_membership_invalidates_bids_cache(self):
        shard = make_shard()
        shard.begin_round()
        shard.collect_bids()
        before = shard.bids_vector()
        assert before.size == 3
        dropped = shard.set_membership(["C1", "C3"])
        assert dropped == ["C2"]
        after = shard.bids_vector()
        assert np.array_equal(after, [1.0, 4.0])

    def test_unchanged_shard_cache_still_resets(self):
        # A shard that lost nobody must also drop its cache: the stale
        # array object must not be served by identity after churn.
        shard = make_shard()
        shard.begin_round()
        shard.collect_bids()
        shard.bids_vector()  # populate the cache
        assert shard._bids_cache is not None
        shard.set_membership(["C1", "C2", "C3"])  # no-op membership
        assert shard._bids_cache is None  # cache dropped regardless

    def test_begin_round_restores_full_membership(self):
        shard = make_shard()
        shard.begin_round()
        shard.collect_bids()
        shard.set_membership(["C2"])
        shard.begin_round()
        assert shard.machine_names == ["C1", "C2", "C3"]


class TestCheckpointRestore:
    def test_restore_resumes_with_ledger_and_estimates(self):
        store = CheckpointStore()
        shard = make_shard(store=store, fail_after_payments=2)
        shard.begin_round()
        shard.collect_bids()
        shard.allocate_from_total(1.75)
        shard.run_execution()
        amounts = shard.local_payments(1.75, 1.75)
        with pytest.raises(ShardCrash):
            shard.settle(amounts)

        restored = CoordinatorShard.restore(
            store.load(),
            shard_id=0,
            agents=shard.agents,
            rng=np.random.default_rng(3),
            checkpoint_store=store,
        )
        assert restored.fail_after_payments is None  # hook cleared
        assert len(restored.payments_sent) == 2
        assert np.allclose(restored._estimates, shard._estimates)
        ledger = restored.settle(amounts)
        assert set(ledger) == {"C1", "C2", "C3"}
        # The two pre-crash members were never re-notified.
        assert restored.payment_notices["C1"] == 0
        assert restored.payment_notices["C2"] == 0
        assert restored.payment_notices["C3"] == 1
