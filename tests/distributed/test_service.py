"""Parity and recovery suite for the sharded coordinator service.

The load-bearing contract (ISSUE 7): with exact aggregation, a global
workload, and the serial executor, a sharded round is **bit-identical**
to the single-coordinator path on the same seed — same loads, payments,
estimates, job count, and clock — for any shard count.  Everything else
here guards the supporting claims: scalar-mode agreement, concurrent
executors, mid-round churn, and crash recovery with at-most-once
payments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import ManipulativeAgent, TruthfulAgent
from repro.distributed import ShardCrash, ShardedCoordinatorService
from repro.parallel.units import ExperimentUnit, execute_unit
from repro.protocol import run_protocol
from repro.resilience import RoundSupervisor

TRUE_VALUES = (1.0, 2.0, 4.0, 3.0, 1.5, 2.5, 0.8, 5.0)
RATE = 7.0
DURATION = 40.0


def agents():
    return [TruthfulAgent(t) for t in TRUE_VALUES]


def monolithic(seed, *, deterministic=True, agent_list=None):
    return run_protocol(
        agent_list if agent_list is not None else agents(),
        RATE,
        duration=DURATION,
        rng=np.random.default_rng(seed),
        deterministic_service=deterministic,
    )


def service(seed, **kwargs):
    kwargs.setdefault("duration", DURATION)
    return ShardedCoordinatorService(
        kwargs.pop("agent_list", None) or agents(),
        RATE,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestBitParity:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_deterministic_round_is_bit_identical(self, shards):
        mono = monolithic(42)
        svc = service(42, shards=shards)
        try:
            result = svc.run_round()
        finally:
            svc.close()
        assert np.array_equal(
            np.array([result.loads[n] for n in result.names]),
            mono.outcome.loads,
        )
        assert np.array_equal(
            result.outcome.payments.payment, mono.outcome.payments.payment
        )
        assert np.array_equal(
            result.outcome.payments.compensation,
            mono.outcome.payments.compensation,
        )
        assert np.array_equal(
            result.estimated_execution_values,
            mono.estimated_execution_values,
        )
        assert result.jobs_routed == mono.jobs_routed
        assert result.simulated_time == mono.simulated_time

    @pytest.mark.parametrize("shards", [1, 3, 4])
    def test_stochastic_serial_round_is_bit_identical(self, shards):
        # The serial executor threads one shared RNG through every
        # shard, so even noisy service times consume the monolithic
        # stream exactly.
        mono = monolithic(123, deterministic=False)
        svc = service(123, shards=shards, deterministic_service=False)
        try:
            result = svc.run_round()
        finally:
            svc.close()
        assert np.array_equal(
            result.outcome.payments.payment, mono.outcome.payments.payment
        )
        assert np.array_equal(
            result.estimated_execution_values,
            mono.estimated_execution_values,
        )

    def test_manipulative_agents_are_bit_identical(self):
        def liars():
            built = agents()
            built[2] = ManipulativeAgent(TRUE_VALUES[2], 2.0, 1.5)
            return built

        mono = monolithic(7, agent_list=liars())
        svc = service(7, shards=4, agent_list=liars())
        try:
            result = svc.run_round()
        finally:
            svc.close()
        assert np.array_equal(
            result.outcome.payments.payment, mono.outcome.payments.payment
        )

    @pytest.mark.parametrize("executor", ["async", "process"])
    def test_concurrent_executors_match_under_deterministic_service(
        self, executor
    ):
        mono = monolithic(42)
        svc = service(42, shards=4, executor=executor)
        try:
            result = svc.run_round()
        finally:
            svc.close()
        assert np.array_equal(
            result.outcome.payments.payment, mono.outcome.payments.payment
        )

    def test_multi_round_service_stays_in_lockstep(self):
        # The service reuses long-lived machines; three consecutive
        # rounds must match three fresh monolithic runs on one stream.
        rng = np.random.default_rng(5)
        svc = service(5, shards=4)
        try:
            results = svc.run(3)
        finally:
            svc.close()
        for result in results:
            mono = run_protocol(
                agents(), RATE, duration=DURATION, rng=rng,
                deterministic_service=True,
            )
            assert np.array_equal(
                result.outcome.payments.payment,
                mono.outcome.payments.payment,
            )
            assert result.jobs_routed == mono.jobs_routed


class TestScalarMode:
    def test_scalar_payments_agree_to_1e12(self):
        mono = monolithic(42)
        svc = service(42, shards=4, aggregation="scalar")
        try:
            result = svc.run_round()
        finally:
            svc.close()
        assert result.outcome is None  # never materialised globally
        payments = np.array([result.payments[n][0] for n in result.names])
        assert np.allclose(
            payments, mono.outcome.payments.payment, rtol=1e-12
        )

    def test_scalar_messages_are_constant_per_shard(self):
        svc = service(0, shards=4, aggregation="scalar")
        try:
            result = svc.run_round()
        finally:
            svc.close()
        # One partial up + one broadcast down per edge, two phases.
        assert result.total_messages == 2 * 2 * svc.overlay.n_edges


class TestWorkloadModes:
    def test_local_workload_routes_and_pays(self):
        svc = service(9, shards=4, workload="local")
        try:
            result = svc.run_round()
        finally:
            svc.close()
        assert result.jobs_routed > 0
        assert len(result.payments) == len(TRUE_VALUES)
        assert all(np.isfinite(v[0]) for v in result.payments.values())


class TestMembershipChurn:
    def test_mid_round_churn_invalidates_every_shard(self):
        # Drop members on two different shards between bidding and
        # allocation; the surviving 6-agent allocation must equal a
        # monolithic run over the survivors (a stale cached bids vector
        # on any shard would poison the reassembled global array).
        svc = service(42, shards=4)
        try:
            round_ = svc.begin_round()
            round_.collect_bids()
            dropped = round_.remove_agents(["C3", "C6"])
            round_.allocate()
            round_.execute()
            round_.settle()
            result = round_.result()
        finally:
            svc.close()
        assert dropped == ["C3", "C6"]
        survivors = [
            TruthfulAgent(t)
            for i, t in enumerate(TRUE_VALUES)
            if i not in (2, 5)
        ]
        mono = monolithic(42, agent_list=survivors)
        assert np.array_equal(
            np.array([result.loads[n] for n in result.names]),
            mono.outcome.loads,
        )
        assert sorted(result.payments) == [
            "C1", "C2", "C4", "C5", "C7", "C8",
        ]

    def test_restrict_limits_participants_before_bidding(self):
        svc = service(0, shards=4)
        try:
            result = svc.run_round(
                participants=["C1", "C2", "C5", "C6", "C7", "C8"]
            )
        finally:
            svc.close()
        assert "C3" not in result.payments
        assert "C4" not in result.payments
        assert sorted(result.dropped) == ["C3", "C4"]


class TestCrashRecovery:
    @pytest.mark.parametrize("executor", ["serial", "async", "process"])
    def test_mid_settle_crash_recovers_with_at_most_once_payments(
        self, executor
    ):
        mono = monolithic(7)
        svc = service(7, shards=4, executor=executor)
        svc.arm_shard_crash(1, after_payments=1)
        try:
            result = svc.run_round()
        finally:
            svc.close()
        assert result.shard_restarts == 1
        # The recovered round still pays exactly the monolithic amounts,
        # and nobody ever saw a second payment notice.
        assert np.array_equal(
            result.outcome.payments.payment, mono.outcome.payments.payment
        )
        assert len(result.payments) == len(TRUE_VALUES)
        assert max(result.payment_notices.values()) == 1

    def test_restart_budget_exhaustion_raises(self):
        svc = service(7, shards=4, max_shard_restarts=0)
        svc.arm_shard_crash(0, after_payments=0)
        try:
            with pytest.raises(ShardCrash):
                svc.run_round()
        finally:
            svc.close()

    def test_service_recovers_across_rounds(self):
        # A crash in round 1 must not leak state into round 2.
        rng = np.random.default_rng(11)
        svc = service(11, shards=2)
        svc.arm_shard_crash(0, after_payments=2)
        try:
            first = svc.run_round()
            second = svc.run_round()
        finally:
            svc.close()
        assert first.shard_restarts == 1
        assert second.shard_restarts == 0
        mono1 = run_protocol(agents(), RATE, duration=DURATION, rng=rng,
                             deterministic_service=True)
        mono2 = run_protocol(agents(), RATE, duration=DURATION, rng=rng,
                             deterministic_service=True)
        assert np.array_equal(
            first.outcome.payments.payment, mono1.outcome.payments.payment
        )
        assert np.array_equal(
            second.outcome.payments.payment, mono2.outcome.payments.payment
        )


class TestSupervisorIntegration:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_supervised_rounds_are_bit_identical(self, shards):
        def supervisor(n_shards):
            return RoundSupervisor(
                agents(), RATE, rng=np.random.default_rng(9), shards=n_shards
            )

        mono = supervisor(1).run(3)
        sharded = supervisor(shards).run(3)
        for a, b in zip(mono.rounds, sharded.rounds):
            assert a.payments == b.payments
            assert a.loads == b.loads
            assert a.jobs_routed == b.jobs_routed
            assert a.alerts == b.alerts
            assert np.array_equal(
                a.outcome.payments.payment, b.outcome.payments.payment
            )

    def test_supervised_stochastic_parity(self):
        def supervisor(n_shards):
            return RoundSupervisor(
                agents(), RATE, rng=np.random.default_rng(9),
                deterministic_service=False, shards=n_shards,
            )

        mono = supervisor(1).run(2)
        sharded = supervisor(4).run(2)
        for a, b in zip(mono.rounds, sharded.rounds):
            assert a.payments == b.payments

    def test_faulted_rounds_fall_back_to_monolithic_path(self):
        from repro.resilience import FaultPlan

        supervisor = RoundSupervisor(
            agents(), RATE, rng=np.random.default_rng(3), shards=4
        )
        plan = FaultPlan.generate(
            5, supervisor.machine_names, seed=3, p_machine_fault=0.9
        )
        report = supervisor.run(5, fault_plan=plan)
        assert len(report.rounds) == 5  # chaos rounds still complete


class TestCampaignUnits:
    def test_sharded_protocol_unit_payload_matches_monolithic(self):
        base = dict(
            kind="protocol", scenario="s1", bid_factor=2.0,
            execution_factor=1.5, true_values=TRUE_VALUES,
            arrival_rate=RATE, seed=11, duration=60.0,
        )
        mono = execute_unit(ExperimentUnit(**base))
        sharded = execute_unit(ExperimentUnit(**base, shards=3))
        for key in mono:
            if key == "total_messages":
                # The sharded run reports the aggregation tree's count.
                assert sharded[key] < mono[key]
            else:
                assert mono[key] == sharded[key], key

    def test_shards_only_enter_cache_key_when_sharded(self):
        base = dict(
            kind="protocol", scenario="s1", bid_factor=1.0,
            execution_factor=1.0, true_values=TRUE_VALUES,
            arrival_rate=RATE, seed=0,
        )
        assert "shards" not in ExperimentUnit(**base).as_config()
        sharded = ExperimentUnit(**base, shards=4)
        assert sharded.as_config()["shards"] == 4
        assert ExperimentUnit.from_config(sharded.as_config()) == sharded


class TestValidation:
    def test_rejects_unknown_modes(self):
        with pytest.raises(ValueError, match="aggregation"):
            service(0, aggregation="nope")
        with pytest.raises(ValueError, match="executor"):
            service(0, executor="nope")
        with pytest.raises(ValueError, match="workload"):
            service(0, workload="nope")

    def test_rejects_more_shards_than_agents(self):
        with pytest.raises(ValueError, match="cannot spread"):
            service(0, shards=100)

    def test_closed_service_refuses_rounds(self):
        svc = service(0, shards=2)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.run_round()
