"""Unit tests for shard partial-sum gathering (repro.distributed.gather)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import (
    PartialSum,
    ShardPartial,
    aggregate_shards,
    concatenate_payload,
    star_overlay,
    tree_overlay,
)


class TestPartialSum:
    def test_of_is_one_numpy_reduction(self, rng):
        values = rng.uniform(0.1, 5.0, size=37)
        assert PartialSum.of(values).total == float(np.sum(values))

    def test_merge_is_order_robust(self, rng):
        values = rng.uniform(1e-8, 1e8, size=200)
        parts = [PartialSum.of(chunk) for chunk in np.array_split(values, 9)]
        left = parts[0]
        for p in parts[1:]:
            left = left.merge(p)
        right = parts[-1]
        for p in reversed(parts[:-1]):
            right = p.merge(right)
        assert left.value == pytest.approx(right.value, rel=1e-15)
        assert left.value == pytest.approx(float(np.sum(values)), rel=1e-12)

    def test_compensation_recovers_cancellation(self):
        # 1 + tiny - 1 loses the tiny term in naive float addition.
        tiny = 1e-17
        merged = (
            PartialSum.of(np.array([1.0]))
            .merge(PartialSum.of(np.array([tiny])))
            .merge(PartialSum.of(np.array([-1.0])))
        )
        assert merged.value == pytest.approx(tiny, rel=1e-6)

    def test_empty_partial_is_identity(self):
        p = PartialSum.of(np.array([2.5, 0.5]))
        assert PartialSum().merge(p).value == p.value


class TestShardPartial:
    def test_merge_combines_counts_sums_and_payloads(self):
        a = ShardPartial(0, 2, PartialSum(1.0), payload={0: {"bids": np.ones(2)}})
        b = ShardPartial(1, 3, PartialSum(2.0), payload={1: {"bids": np.ones(3)}})
        merged = a.merge(b)
        assert merged.n_agents == 5
        assert merged.inverse_sum.value == pytest.approx(3.0)
        assert set(merged.payload) == {0, 1}

    def test_quotient_none_propagates(self):
        a = ShardPartial(0, 1, quotient_sum=PartialSum(1.0))
        b = ShardPartial(1, 1, quotient_sum=None)
        assert a.merge(b).quotient_sum is None

    def test_duplicate_payload_rejected(self):
        a = ShardPartial(0, 1, payload={0: {"bids": np.ones(1)}})
        b = ShardPartial(1, 1, payload={0: {"bids": np.ones(1)}})
        with pytest.raises(ValueError, match="duplicate shard payloads"):
            a.merge(b)


class TestAggregateShards:
    @pytest.mark.parametrize("make", [star_overlay, tree_overlay])
    @pytest.mark.parametrize("n_shards", [1, 2, 5, 16])
    def test_sums_match_flat_reduction(self, make, n_shards, rng):
        chunks = [rng.uniform(0.5, 4.0, size=3) for _ in range(n_shards)]
        partials = [
            ShardPartial(k, 3, PartialSum.of(c), PartialSum.of(c**2))
            for k, c in enumerate(chunks)
        ]
        root, _ = aggregate_shards(make(n_shards), partials)
        flat = np.concatenate(chunks)
        assert root.inverse_sum.value == pytest.approx(flat.sum(), rel=1e-13)
        assert root.quotient_sum.value == pytest.approx(
            (flat**2).sum(), rel=1e-13
        )
        assert root.n_agents == 3 * n_shards

    def test_message_accounting_matches_tree_sum(self):
        overlay = tree_overlay(7)
        partials = [
            ShardPartial(k, 1, PartialSum(1.0)) for k in range(7)
        ]
        _, stats = aggregate_shards(overlay, partials)
        assert stats.messages_up == 7
        assert stats.messages_down == overlay.n_edges
        assert stats.rounds_of_latency == 2 * overlay.depth()

    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError, match="one partial per shard"):
            aggregate_shards(star_overlay(3), [ShardPartial(0, 1)])

    def test_wrong_ids_rejected(self):
        partials = [ShardPartial(k, 1) for k in (0, 2)]
        with pytest.raises(ValueError, match="shard ids"):
            aggregate_shards(star_overlay(2), partials)

    def test_quotient_only_when_all_present(self):
        partials = [
            ShardPartial(0, 1, quotient_sum=PartialSum(1.0)),
            ShardPartial(1, 1, quotient_sum=None),
        ]
        root, _ = aggregate_shards(star_overlay(2), partials)
        assert root.quotient_sum is None


class TestConcatenatePayload:
    def test_restores_canonical_order(self):
        partials = [
            ShardPartial(k, 2, payload={k: {"bids": np.array([2.0 * k, 2.0 * k + 1])}})
            for k in range(4)
        ]
        root, _ = aggregate_shards(tree_overlay(4), partials)
        assert np.array_equal(
            concatenate_payload(root, "bids"), np.arange(8.0)
        )

    def test_missing_payload_rejected(self):
        with pytest.raises(ValueError, match="no payload"):
            concatenate_payload(ShardPartial(0, 1), "bids")
