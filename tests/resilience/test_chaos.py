"""Chaos harness: seeded fault plans and invariant enforcement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import TruthfulAgent
from repro.resilience import (
    ChaosHarness,
    FaultPlan,
    InvariantError,
    InvariantViolation,
    MachineFault,
    RoundFaults,
    RoundSupervisor,
    check_round_invariants,
)

TRUE_VALUES = [1.0, 1.3, 1.7, 2.0, 2.4, 3.0]


def _supervisor(seed: int = 0) -> RoundSupervisor:
    agents = [TruthfulAgent(t) for t in TRUE_VALUES]
    return RoundSupervisor(
        agents, arrival_rate=1.0, rng=np.random.default_rng(seed)
    )


class TestFaultValidation:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            MachineFault("meltdown")

    def test_unknown_crash_point_rejected(self):
        with pytest.raises(ValueError):
            MachineFault("crash", point="eventually")

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(ValueError):
            MachineFault("slow_execution", slowdown=0.5)

    def test_bad_drop_probability_rejected(self):
        with pytest.raises(ValueError):
            RoundFaults(drop_probability=1.0)

    def test_unknown_coordinator_crash_rejected(self):
        with pytest.raises(ValueError):
            RoundFaults(coordinator_crash="at_lunch")

    def test_clean_round_detected(self):
        assert RoundFaults().is_clean
        assert not RoundFaults(drop_probability=0.1).is_clean


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        names = [f"C{i+1}" for i in range(6)]
        a = FaultPlan.generate(20, names, seed=7)
        b = FaultPlan.generate(20, names, seed=7)
        assert len(a) == len(b) == 20
        for fa, fb in zip(a, b):
            assert fa == fb

    def test_different_seed_different_plan(self):
        names = [f"C{i+1}" for i in range(6)]
        a = FaultPlan.generate(20, names, seed=7)
        b = FaultPlan.generate(20, names, seed=8)
        assert any(fa != fb for fa, fb in zip(a, b))

    def test_faulty_fraction_capped(self):
        names = [f"C{i+1}" for i in range(10)]
        plan = FaultPlan.generate(
            50, names, seed=1, p_machine_fault=0.9, max_faulty_fraction=0.3
        )
        assert all(len(r.machine_faults) <= 3 for r in plan)

    def test_plan_actually_contains_chaos(self):
        names = [f"C{i+1}" for i in range(6)]
        plan = FaultPlan.generate(60, names, seed=3)
        assert plan.n_machine_faults > 0
        assert plan.n_coordinator_crashes > 0
        assert any(r.drop_probability > 0 for r in plan)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(0, ["C1"], seed=0)
        with pytest.raises(ValueError):
            FaultPlan.generate(5, [], seed=0)


class TestInvariantChecking:
    def test_clean_round_has_no_violations(self):
        sup = _supervisor()
        result = sup.run_round()
        assert check_round_invariants(result, honest_names=sup.honest_names()) == []

    def test_tampered_loads_caught(self):
        sup = _supervisor()
        result = sup.run_round()
        result.loads[result.live_names[0]] += 0.5  # break feasibility
        violations = check_round_invariants(result)
        assert any(v.invariant == "feasibility" for v in violations)

    def test_double_payment_caught(self):
        sup = _supervisor()
        result = sup.run_round()
        result.payment_notices[result.live_names[0]] = 2
        violations = check_round_invariants(result)
        assert any(v.invariant == "at-most-once" for v in violations)

    def test_paid_withheld_machine_caught(self):
        sup = _supervisor()
        result = sup.run_round(
            RoundFaults(
                machine_faults={"C1": MachineFault("crash", point="after_bid")}
            )
        )
        assert result.withheld == ["C1"]
        result.payments["C1"] = 3.0
        violations = check_round_invariants(result)
        assert any(v.invariant == "unverified-paid" for v in violations)

    def test_violation_string_names_round_and_invariant(self):
        violation = InvariantViolation(4, "feasibility", "off by 1")
        assert "round 4" in str(violation)
        assert "feasibility" in str(violation)

    def test_invariant_error_carries_violations(self):
        violation = InvariantViolation(0, "ledger", "mismatch")
        error = InvariantError([violation])
        assert error.violations == [violation]
        assert "ledger" in str(error)


class TestChaosRuns:
    def test_fifty_rounds_of_chaos_zero_violations(self):
        # The acceptance run: >= 50 seeded chaos rounds, invariants
        # checked after every one, zero violations.
        sup = _supervisor(seed=3)
        plan = FaultPlan.generate(50, sup.machine_names, seed=2026)
        report = ChaosHarness(sup, plan).run()
        assert report.ok
        assert report.n_rounds == 50
        # The plan really exercised the resilience machinery.
        assert plan.n_machine_faults > 10
        assert report.n_coordinator_restarts > 0

    def test_collect_mode_reports_instead_of_raising(self):
        sup = _supervisor(seed=4)
        plan = FaultPlan.generate(5, sup.machine_names, seed=11)
        report = ChaosHarness(sup, plan, stop_on_violation=False).run()
        assert report.n_rounds == 5
        assert report.violations == []

    def test_heavy_loss_rounds_still_sound(self):
        sup = _supervisor(seed=5)
        plan = FaultPlan([RoundFaults(drop_probability=0.5)] * 3)
        report = ChaosHarness(sup, plan).run()
        assert report.ok
        assert all(not r.voided for r in report.rounds)

    def test_deterministic_replay(self):
        def run():
            sup = _supervisor(seed=6)
            plan = FaultPlan.generate(10, sup.machine_names, seed=13)
            return ChaosHarness(sup, plan).run()

        a, b = run(), run()
        assert [r.payments for r in a.rounds] == [r.payments for r in b.rounds]
        assert [r.alerts for r in a.rounds] == [r.alerts for r in b.rounds]
