"""QuarantinePolicy: the closed → open → half-open lifecycle."""

from __future__ import annotations

import pytest

from repro.resilience import CircuitState, QuarantinePolicy


def _policy(**kwargs) -> QuarantinePolicy:
    defaults = dict(
        failure_threshold=2,
        cooldown_rounds=2,
        max_cooldown_rounds=8,
        probe_successes_required=2,
        readmission_reputation=0.0,  # lifecycle tests gate on probes only
        reputation_alpha=0.5,
    )
    defaults.update(kwargs)
    policy = QuarantinePolicy(**defaults)
    policy.admit("A")
    policy.admit("B")
    return policy


class TestOpening:
    def test_single_failure_keeps_circuit_closed(self):
        policy = _policy()
        policy.record_failure("A", "missed_bid")
        assert policy.state_of("A") is CircuitState.CLOSED

    def test_consecutive_failures_open_circuit(self):
        policy = _policy()
        policy.record_failure("A", "missed_bid")
        policy.record_failure("A", "missed_bid")
        assert policy.state_of("A") is CircuitState.OPEN
        assert policy.quarantined() == ["A"]
        assert policy.health_of("A").times_opened == 1

    def test_success_resets_the_failure_streak(self):
        policy = _policy()
        policy.record_failure("A", "missed_bid")
        policy.record_success("A")
        policy.record_failure("A", "slowdown_alert")
        assert policy.state_of("A") is CircuitState.CLOSED

    def test_open_machine_excluded_from_rounds(self):
        policy = _policy()
        policy.record_failure("A", "x")
        policy.record_failure("A", "x")
        assert policy.begin_round() == ["B"]

    def test_last_failure_reason_recorded(self):
        policy = _policy()
        policy.record_failure("A", "slowdown_alert")
        assert policy.health_of("A").last_failure_reason == "slowdown_alert"


class TestHalfOpenProbes:
    def _opened(self) -> QuarantinePolicy:
        policy = _policy()
        policy.record_failure("A", "x")
        policy.record_failure("A", "x")
        return policy

    def test_cooldown_elapses_into_half_open(self):
        policy = self._opened()
        assert policy.begin_round() == ["B"]  # cooldown 2 -> 1
        admitted = policy.begin_round()  # cooldown 1 -> 0: probe
        assert admitted == ["B", "A"] or set(admitted) == {"A", "B"}
        assert policy.state_of("A") is CircuitState.HALF_OPEN
        assert policy.probes() == ["A"]

    def test_probe_successes_close_the_circuit(self):
        policy = self._opened()
        policy.begin_round()
        policy.begin_round()
        policy.record_success("A")
        assert policy.state_of("A") is CircuitState.HALF_OPEN  # needs 2
        policy.record_success("A")
        assert policy.state_of("A") is CircuitState.CLOSED

    def test_failed_probe_reopens_with_doubled_cooldown(self):
        policy = self._opened()
        policy.begin_round()
        policy.begin_round()
        policy.record_failure("A", "x")
        assert policy.state_of("A") is CircuitState.OPEN
        assert policy.health_of("A").current_cooldown == 4

    def test_cooldown_doubling_is_capped(self):
        policy = self._opened()
        for _ in range(5):  # repeatedly fail every probe
            while policy.state_of("A") is CircuitState.OPEN:
                policy.begin_round()
            policy.record_failure("A", "x")
        assert policy.health_of("A").current_cooldown == 8  # the cap

    def test_closing_resets_cooldown_progression(self):
        policy = self._opened()
        policy.begin_round()
        policy.begin_round()
        policy.record_success("A")
        policy.record_success("A")
        # Re-trip: cooldown restarts at the base value, not doubled.
        policy.record_failure("A", "x")
        policy.record_failure("A", "x")
        assert policy.health_of("A").current_cooldown == 2


class TestReputation:
    def test_reputation_tracks_outcomes(self):
        policy = _policy(reputation_alpha=0.5)
        assert policy.reputation_of("A") == 1.0
        policy.record_failure("A", "x")
        assert policy.reputation_of("A") == pytest.approx(0.5)
        policy.record_success("A")
        assert policy.reputation_of("A") == pytest.approx(0.75)

    def test_low_reputation_blocks_readmission(self):
        policy = _policy(readmission_reputation=0.9, reputation_alpha=0.1)
        policy.record_failure("A", "x")
        policy.record_failure("A", "x")
        policy.begin_round()
        policy.begin_round()
        policy.record_success("A")
        policy.record_success("A")
        # Probes passed but the long-run record is still poor.
        assert policy.state_of("A") is CircuitState.HALF_OPEN
        while policy.reputation_of("A") < 0.9:
            policy.record_success("A")
        assert policy.state_of("A") is CircuitState.CLOSED


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_rounds": 0},
            {"max_cooldown_rounds": 1, "cooldown_rounds": 2},
            {"probe_successes_required": 0},
            {"readmission_reputation": 1.5},
            {"reputation_alpha": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QuarantinePolicy(**kwargs)

    def test_admit_is_idempotent(self):
        policy = QuarantinePolicy()
        policy.admit("A")
        policy.record_failure("A", "x")
        policy.admit("A")  # must not reset health
        assert policy.health_of("A").failures_total == 1

    def test_unknown_machine_raises(self):
        policy = QuarantinePolicy()
        with pytest.raises(KeyError):
            policy.state_of("ghost")
