"""RoundSupervisor: retry healing, quarantine, recovery, reallocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import TruthfulAgent
from repro.allocation import pr_allocation
from repro.mechanism import VerificationMechanism
from repro.resilience import (
    CircuitState,
    MachineFault,
    RoundFaults,
    RoundSupervisor,
)

TRUE_VALUES = [1.0, 1.5, 2.0, 2.5, 3.0]


def _supervisor(seed: int = 0, **kwargs) -> RoundSupervisor:
    agents = [TruthfulAgent(t) for t in TRUE_VALUES]
    kwargs.setdefault("rng", np.random.default_rng(seed))
    return RoundSupervisor(agents, arrival_rate=1.2, **kwargs)


class TestCleanRounds:
    def test_round_allocates_the_full_rate(self):
        sup = _supervisor()
        result = sup.run_round()
        assert not result.voided
        assert sum(result.loads.values()) == pytest.approx(1.2, abs=1e-9)
        assert result.live_names == sup.machine_names

    def test_loads_match_from_scratch_pr(self):
        sup = _supervisor()
        result = sup.run_round()
        expected = pr_allocation(np.array(TRUE_VALUES), 1.2)
        for name, load in zip(sup.machine_names, expected.loads):
            assert result.loads[name] == pytest.approx(load, abs=1e-9)

    def test_honest_machines_profit(self):
        sup = _supervisor()
        result = sup.run_round()
        for name in sup.honest_names() & set(result.live_names):
            assert result.utilities[name] >= -1e-9

    def test_every_machine_paid_exactly_once(self):
        result = _supervisor().run_round()
        assert all(count == 1 for count in result.payment_notices.values())

    def test_multi_round_report_aggregates(self):
        sup = _supervisor()
        report = sup.run(3)
        assert report.n_rounds == 3
        assert report.n_voided == 0
        assert report.total_coordinator_restarts == 0

    def test_run_validates_round_count(self):
        with pytest.raises(ValueError):
            _supervisor().run(0)

    def test_needs_two_machines(self):
        with pytest.raises(ValueError):
            RoundSupervisor([TruthfulAgent(1.0)], arrival_rate=1.0)

    def test_rounds_reuse_incremental_state(self):
        sup = _supervisor()
        sup.run(3)
        assert sup.allocator.rebuilds == 1  # round 1 builds, rest reuse


class TestRetryHealing:
    def test_withheld_bid_healed_by_retry(self):
        sup = _supervisor()
        faults = RoundFaults(
            machine_faults={"C2": MachineFault("withhold_bid", count=1)}
        )
        result = sup.run_round(faults)
        assert not result.voided
        assert result.bid_retries >= 1
        assert "C2" in result.live_names
        assert result.excluded == []
        assert sup.quarantine.state_of("C2") is CircuitState.CLOSED

    def test_withheld_report_healed_by_retry(self):
        sup = _supervisor()
        faults = RoundFaults(
            machine_faults={"C3": MachineFault("withhold_report", count=1)}
        )
        result = sup.run_round(faults)
        assert not result.voided
        assert result.report_retries >= 1
        assert result.withheld == []
        assert result.payments["C3"] > 0.0

    def test_crashed_machine_excluded_after_retries_exhausted(self):
        sup = _supervisor()
        faults = RoundFaults(machine_faults={"C1": MachineFault("crash")})
        result = sup.run_round(faults)
        assert not result.voided
        assert result.excluded == ["C1"]
        assert "C1" not in result.loads
        assert sum(result.loads.values()) == pytest.approx(1.2, abs=1e-9)
        assert result.payment_notices["C1"] == 0

    def test_crash_after_bid_withholds_payment(self):
        sup = _supervisor()
        faults = RoundFaults(
            machine_faults={"C1": MachineFault("crash", point="after_bid")}
        )
        result = sup.run_round(faults)
        assert not result.voided
        assert result.withheld == ["C1"]
        assert result.payments["C1"] == 0.0
        # Still exactly one (zero-amount) notice: the ledger is honest.
        assert result.payment_notices["C1"] == 1


class TestQuarantineFlow:
    def _crash(self, name: str) -> RoundFaults:
        return RoundFaults(machine_faults={name: MachineFault("crash")})

    def test_repeated_failures_open_the_circuit(self):
        sup = _supervisor()
        sup.run_round(self._crash("C1"))
        assert sup.quarantine.state_of("C1") is CircuitState.CLOSED
        sup.run_round(self._crash("C1"))
        assert sup.quarantine.state_of("C1") is CircuitState.OPEN

    def test_quarantined_load_respread_matches_from_scratch_pr(self):
        sup = _supervisor()
        sup.run_round(self._crash("C1"))
        sup.run_round(self._crash("C1"))
        result = sup.run_round()  # C1 sits out quarantined
        assert result.quarantined == ["C1"]
        assert "C1" not in result.loads
        survivors = [n for n in sup.machine_names if n != "C1"]
        expected = pr_allocation(np.array(TRUE_VALUES[1:]), 1.2)
        for name, load in zip(survivors, expected.loads):
            assert result.loads[name] == pytest.approx(load, abs=1e-9)
        # ... and it was an incremental update, not a rebuild.
        assert sup.allocator.rebuilds == 1

    def test_readmission_via_half_open_probes(self):
        sup = _supervisor()
        sup.run_round(self._crash("C1"))
        sup.run_round(self._crash("C1"))  # opens, cooldown 2
        r3 = sup.run_round()
        assert "C1" not in r3.participants
        r4 = sup.run_round()  # cooldown elapsed: C1 probes
        assert "C1" in r4.probes and "C1" in r4.participants
        assert sup.quarantine.state_of("C1") is CircuitState.HALF_OPEN
        while sup.quarantine.state_of("C1") is CircuitState.HALF_OPEN:
            sup.run_round()  # clean probes eventually close the circuit
        assert sup.quarantine.state_of("C1") is CircuitState.CLOSED
        final = sup.run_round()
        assert "C1" in final.live_names

    def test_slowdown_alerts_feed_quarantine(self):
        sup = _supervisor(duration=80.0)
        slow = RoundFaults(
            machine_faults={"C1": MachineFault("slow_execution", slowdown=3.0)}
        )
        r1 = sup.run_round(slow)
        assert r1.alerts == ["C1"]
        r2 = sup.run_round(slow)
        assert r2.alerts == ["C1"]
        assert sup.quarantine.state_of("C1") is CircuitState.OPEN
        assert (
            sup.quarantine.health_of("C1").last_failure_reason
            == "slowdown_alert"
        )

    def test_too_few_admitted_voids_the_round(self):
        agents = [TruthfulAgent(1.0), TruthfulAgent(2.0)]
        sup = RoundSupervisor(
            agents, arrival_rate=1.0, rng=np.random.default_rng(0)
        )
        crash = RoundFaults(machine_faults={"C1": MachineFault("crash")})
        sup.run_round(crash)
        sup.run_round(crash)  # C1 quarantined; only C2 remains
        result = sup.run_round()
        assert result.voided
        assert result.jobs_routed == 0


class TestCoordinatorRecovery:
    def test_crash_during_bidding_with_open_bids_voids_without_blame(self):
        # The coordinator dies while a bid is still outstanding: the
        # replacement finds no announced allocation and voids safely.
        sup = _supervisor()
        result = sup.run_round(
            RoundFaults(
                coordinator_crash="during_bidding",
                machine_faults={"C2": MachineFault("withhold_bid", count=10)},
            )
        )
        assert result.voided
        assert result.coordinator_restarts == 1
        assert result.payment_notices == {n: 0 for n in sup.machine_names}
        # The machines did nothing wrong: nobody's circuit moved.
        for name in sup.machine_names:
            assert sup.quarantine.state_of(name) is CircuitState.CLOSED

    def test_crash_during_bidding_after_all_bids_completes(self):
        # If every bid already arrived, the checkpoint shows EXECUTING:
        # the restored coordinator resumes instead of voiding.
        sup = _supervisor()
        result = sup.run_round(RoundFaults(coordinator_crash="during_bidding"))
        assert not result.voided
        assert result.coordinator_restarts == 1
        assert all(count == 1 for count in result.payment_notices.values())

    def test_crash_after_allocation_resumes_and_pays(self):
        sup = _supervisor()
        result = sup.run_round(RoundFaults(coordinator_crash="after_allocation"))
        assert not result.voided
        assert result.coordinator_restarts == 1
        assert all(count == 1 for count in result.payment_notices.values())
        assert sum(result.loads.values()) == pytest.approx(1.2, abs=1e-9)

    def test_mid_payment_crash_never_double_pays(self):
        sup = _supervisor()
        result = sup.run_round(
            RoundFaults(coordinator_crash="mid_payment", crash_after_payments=2)
        )
        assert not result.voided
        assert result.coordinator_restarts == 1
        assert all(count == 1 for count in result.payment_notices.values())

    def test_recovered_round_matches_undisturbed_payments(self):
        crashed = _supervisor(seed=3).run_round(
            RoundFaults(coordinator_crash="mid_payment", crash_after_payments=1)
        )
        clean = _supervisor(seed=3).run_round()
        assert crashed.payments == pytest.approx(clean.payments)


class TestMechanismIntegrity:
    def test_payments_match_direct_mechanism_run(self):
        sup = _supervisor()
        result = sup.run_round()
        mech = VerificationMechanism()
        outcome = mech.run(np.array(TRUE_VALUES), 1.2, np.array(TRUE_VALUES))
        for name, expected in zip(sup.machine_names, outcome.payments.payment):
            assert result.payments[name] == pytest.approx(expected, abs=1e-9)
