"""BackoffPolicy: envelope growth, cap, jitter bounds, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import BackoffPolicy


class TestEnvelope:
    def test_grows_exponentially(self):
        policy = BackoffPolicy(base=0.5, factor=2.0, cap=100.0)
        assert policy.envelope(0) == 0.5
        assert policy.envelope(1) == 1.0
        assert policy.envelope(2) == 2.0
        assert policy.envelope(5) == 16.0

    def test_capped(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=4.0)
        assert policy.envelope(10) == 4.0

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy().envelope(-1)


class TestDelay:
    def test_within_envelope_and_positive(self):
        policy = BackoffPolicy(base=0.5, factor=2.0, cap=30.0)
        rng = np.random.default_rng(0)
        for attempt in range(8):
            for _ in range(50):
                d = policy.delay(attempt, rng)
                assert 0.0 < d <= policy.envelope(attempt)

    def test_zero_jitter_is_deterministic(self):
        policy = BackoffPolicy(base=0.5, factor=3.0, jitter=0.0)
        rng = np.random.default_rng(1)
        assert policy.delay(2, rng) == policy.envelope(2) == 4.5

    def test_jitter_actually_varies(self):
        policy = BackoffPolicy()
        rng = np.random.default_rng(2)
        delays = {policy.delay(3, rng) for _ in range(10)}
        assert len(delays) > 1

    def test_schedule_length_and_monotone_envelope(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=100.0, jitter=0.0)
        rng = np.random.default_rng(3)
        schedule = policy.schedule(5, rng)
        assert schedule == [1.0, 2.0, 4.0, 8.0, 16.0]

    def test_total_wait_bounded_by_geometric_series(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=1000.0)
        rng = np.random.default_rng(4)
        total = sum(policy.schedule(10, rng))
        assert total <= sum(policy.envelope(k) for k in range(10))


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"base": -1.0},
            {"factor": 0.5},
            {"cap": 0.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_repr_mentions_parameters(self):
        text = repr(BackoffPolicy(base=0.25, factor=2.0, cap=10.0))
        assert "0.25" in text and "10" in text
