"""Checkpoint round-trips and coordinator crash/restore semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import TruthfulAgent
from repro.mechanism import VerificationMechanism
from repro.protocol import ProtocolPhase, SimulatedNetwork
from repro.protocol.coordinator import COORDINATOR_NAME, MachineNode
from repro.resilience import (
    CheckpointStore,
    CoordinatorCheckpoint,
    SupervisedCoordinator,
)
from repro.system import LinearLatencyMachine, Simulator

TRUE_VALUES = [1.0, 2.0, 5.0, 10.0]


def _build(store: CheckpointStore | None = None, **coordinator_kwargs):
    """A wired 4-machine protocol instance around a SupervisedCoordinator."""
    sim = Simulator()
    rng = np.random.default_rng(0)
    network = SimulatedNetwork(sim)
    names = [f"C{i+1}" for i in range(len(TRUE_VALUES))]
    nodes = []
    for name, t in zip(names, TRUE_VALUES):
        node = MachineNode(
            name=name,
            agent=TruthfulAgent(t),
            machine=LinearLatencyMachine(name, t, rng),
            network=network,
        )
        network.register(name, node.handle)
        nodes.append(node)
    coordinator = SupervisedCoordinator(
        mechanism=VerificationMechanism(),
        machine_names=names,
        arrival_rate=6.0,
        network=network,
        checkpoint_store=store,
        **coordinator_kwargs,
    )
    network.register(COORDINATOR_NAME, coordinator.handle)
    return sim, network, coordinator, nodes


class TestSerialisation:
    def test_json_round_trip_preserves_everything(self):
        checkpoint = CoordinatorCheckpoint(
            phase="verifying",
            machine_names=["C1", "C2"],
            arrival_rate=6.0,
            bids={"C1": 1.0, "C2": 2.0},
            loads=[4.0, 2.0],
            reports={"C1": (17, 4.25)},
            excluded=["C3"],
            withheld=["C2"],
            payments_sent={"C1": (16.0, 16.0, 0.0)},
        )
        assert CoordinatorCheckpoint.from_json(checkpoint.to_json()) == checkpoint

    def test_none_loads_survive(self):
        checkpoint = CoordinatorCheckpoint(
            phase="bidding", machine_names=["C1"], arrival_rate=1.0
        )
        restored = CoordinatorCheckpoint.from_json(checkpoint.to_json())
        assert restored.loads is None

    def test_store_serialises_on_save(self):
        store = CheckpointStore()
        assert store.load() is None
        checkpoint = CoordinatorCheckpoint(
            phase="idle", machine_names=["C1"], arrival_rate=1.0
        )
        store.save(checkpoint)
        assert store.saves == 1
        loaded = store.load()
        assert loaded == checkpoint
        assert loaded is not checkpoint  # a reconstruction, not the object
        store.clear()
        assert store.load() is None


class TestPaymentJournal:
    """The O(1) write-ahead path under the sharded settle phase."""

    def _base(self):
        store = CheckpointStore()
        store.save(
            CoordinatorCheckpoint(
                phase="verifying",
                machine_names=["C1", "C2"],
                arrival_rate=6.0,
                payments_sent={"C1": (1.0, 0.5, 0.5)},
            )
        )
        return store

    def test_appends_fold_into_the_loaded_ledger(self):
        store = self._base()
        store.append_payment("C2", (2.0, 1.0, 1.0))
        loaded = store.load()
        assert loaded.payments_sent == {
            "C1": (1.0, 0.5, 0.5),
            "C2": (2.0, 1.0, 1.0),
        }
        assert store.appends == 1

    def test_journal_survives_repeated_loads(self):
        store = self._base()
        store.append_payment("C2", (2.0, 1.0, 1.0))
        assert store.load() == store.load()

    def test_fresh_save_subsumes_the_journal(self):
        store = self._base()
        store.append_payment("C2", (2.0, 1.0, 1.0))
        store.save(store.load())  # compaction: snapshot absorbs journal
        assert store.load().payments_sent["C2"] == (2.0, 1.0, 1.0)
        store.append_payment("C1", (9.0, 9.0, 0.0))  # later entry wins
        assert store.load().payments_sent["C1"] == (9.0, 9.0, 0.0)

    def test_append_without_snapshot_is_refused(self):
        store = CheckpointStore()
        with pytest.raises(RuntimeError, match="no base snapshot"):
            store.append_payment("C1", (1.0, 0.0, 1.0))

    def test_awkward_values_round_trip(self):
        # Escaped names and non-finite floats take the json fallback;
        # exact float round-trip either way.
        store = self._base()
        store.append_payment('C"\\2', (float("inf"), float("nan"), 1e-300))
        entry = store.load().payments_sent['C"\\2']
        assert entry[0] == float("inf")
        assert entry[1] != entry[1]  # NaN round-trips as NaN
        assert entry[2] == 1e-300

    def test_clear_drops_the_journal_too(self):
        store = self._base()
        store.append_payment("C2", (2.0, 1.0, 1.0))
        store.clear()
        assert store.load() is None
        assert not store.has_snapshot


class TestCheckpointProgression:
    def test_checkpoints_written_at_each_transition(self):
        store = CheckpointStore()
        sim, network, coordinator, nodes = _build(store)
        coordinator.start()
        sim.run()
        assert store.load().phase == "executing"
        assert store.load().loads is not None
        for node in nodes:
            node.machine.sojourn_times.append(0.5)
            node.report_completion()
        sim.run()
        assert store.load().phase == "done"
        assert len(store.load().payments_sent) == len(nodes)

    def test_bids_checkpointed_as_they_arrive(self):
        store = CheckpointStore()
        sim, network, coordinator, nodes = _build(store)
        coordinator.start()
        sim.run()
        assert store.load().bids == {
            f"C{i+1}": v for i, v in enumerate(TRUE_VALUES)
        }


class TestRestore:
    def _run_to_verifying(self, store, fail_after: int):
        """Crash the coordinator after ``fail_after`` payments were sent."""
        from repro.resilience import CoordinatorCrash

        sim, network, coordinator, nodes = _build(
            store, fail_after_payments=fail_after
        )
        coordinator.start()
        sim.run()
        for node in nodes:
            node.machine.sojourn_times.append(0.5)
            node.report_completion()
        with pytest.raises(CoordinatorCrash):
            sim.run()
        return sim, network, coordinator, nodes

    def test_restored_coordinator_pays_only_the_rest(self):
        store = CheckpointStore()
        sim, network, dead, nodes = self._run_to_verifying(store, fail_after=2)
        already_paid = dict(dead.payments_sent)
        assert len(already_paid) == 2

        restored = SupervisedCoordinator.restore(
            store.load(),
            mechanism=VerificationMechanism(),
            network=network,
            checkpoint_store=store,
        )
        assert restored.phase is ProtocolPhase.VERIFYING
        restored.resume()
        sim.run()
        assert restored.phase is ProtocolPhase.DONE
        # Everyone got exactly one notice; the pre-crash payments stand.
        for node in nodes:
            assert node.received_payment is not None
        for name, amounts in already_paid.items():
            assert restored.payments_sent[name] == amounts
        assert len(restored.payments_sent) == len(nodes)

    def test_restored_outcome_matches_uncrashed_run(self):
        # Crashed-and-restored payments must equal a run with no crash.
        store = CheckpointStore()
        sim, network, dead, nodes = self._run_to_verifying(store, fail_after=1)
        restored = SupervisedCoordinator.restore(
            store.load(),
            mechanism=VerificationMechanism(),
            network=network,
            checkpoint_store=store,
        )
        restored.resume()
        sim.run()

        sim2, network2, clean, nodes2 = _build(CheckpointStore())
        clean.start()
        sim2.run()
        for node in nodes2:
            node.machine.sojourn_times.append(0.5)
            node.report_completion()
        sim2.run()
        for name in clean.machine_names:
            assert restored.payments_sent[name] == pytest.approx(
                clean.payments_sent[name]
            )

    def test_restore_in_bidding_voids_the_round(self):
        store = CheckpointStore()
        sim, network, coordinator, nodes = _build(store)
        coordinator.start()
        # Crash before the simulator delivers anything: the checkpoint
        # still shows BIDDING with no loads announced.
        coordinator._save_checkpoint()
        restored = SupervisedCoordinator.restore(
            store.load(),
            mechanism=VerificationMechanism(),
            network=network,
            checkpoint_store=store,
        )
        restored.resume()
        assert restored.phase is ProtocolPhase.VOIDED
        assert restored.payments_sent == {}

    def test_restore_in_executing_waits_for_reports(self):
        store = CheckpointStore()
        sim, network, coordinator, nodes = _build(store)
        coordinator.start()
        sim.run()
        assert coordinator.phase is ProtocolPhase.EXECUTING
        restored = SupervisedCoordinator.restore(
            store.load(),
            mechanism=VerificationMechanism(),
            network=network,
            checkpoint_store=store,
        )
        restored.resume()
        assert restored.phase is ProtocolPhase.EXECUTING
        network._handlers[COORDINATOR_NAME] = restored.handle
        for node in nodes:
            node.machine.sojourn_times.append(0.5)
            node.report_completion()
        sim.run()
        assert restored.phase is ProtocolPhase.DONE

    def test_restored_coordinator_has_no_chaos_hook(self):
        store = CheckpointStore()
        sim, network, dead, nodes = self._run_to_verifying(store, fail_after=1)
        restored = SupervisedCoordinator.restore(
            store.load(),
            mechanism=VerificationMechanism(),
            network=network,
        )
        assert restored.fail_after_payments is None


class TestMinParticipants:
    def test_round_with_one_responder_is_voided(self):
        sim, network, coordinator, nodes = _build(min_participants=2)
        # Only C1's bid will arrive; everyone else stays silent.
        network._handlers["C2"] = lambda m, s: None
        network._handlers["C3"] = lambda m, s: None
        network._handlers["C4"] = lambda m, s: None
        coordinator.start()
        sim.run()
        coordinator.close_bidding(void_if_empty=True)
        assert coordinator.phase is ProtocolPhase.VOIDED
