"""Unit tests for workload trace record/replay."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.system import DeterministicWorkload, PoissonWorkload
from repro.system.trace import load_trace, save_trace, trace_stats
from repro.system.workload import Job


class TestTraceStats:
    def test_poisson_trace_detected(self, rng):
        jobs = PoissonWorkload(50.0, rng).generate(200.0)
        stats = trace_stats(jobs)
        assert stats.mean_rate == pytest.approx(50.0, rel=0.05)
        assert stats.looks_poissonian

    def test_deterministic_trace_not_poissonian(self):
        jobs = DeterministicWorkload(10.0).generate(50.0)
        stats = trace_stats(jobs)
        assert stats.interarrival_cv == pytest.approx(0.0, abs=1e-9)
        assert not stats.looks_poissonian

    def test_needs_two_jobs(self):
        with pytest.raises(ValueError, match="two jobs"):
            trace_stats([Job(0, 0.0)])

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="arrival order"):
            trace_stats([Job(0, 1.0), Job(1, 0.5), Job(2, 2.0)])


class TestRoundTrip:
    def test_bit_exact_round_trip(self, rng, tmp_path):
        jobs = PoissonWorkload(25.0, rng).generate(20.0)
        path = tmp_path / "trace.json"
        save_trace(jobs, path)
        loaded = load_trace(path)
        assert len(loaded) == len(jobs)
        for original, replayed in zip(jobs, loaded):
            assert replayed.arrival_time == original.arrival_time  # exact

    def test_stats_embedded(self, rng, tmp_path):
        jobs = PoissonWorkload(25.0, rng).generate(20.0)
        path = tmp_path / "trace.json"
        save_trace(jobs, path)
        document = json.loads(path.read_text())
        assert document["stats"]["mean_rate"] == pytest.approx(25.0, rel=0.3)

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.json"
        save_trace([], path)
        assert load_trace(path) == []

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 9}))
        with pytest.raises(ValueError, match="format"):
            load_trace(path)

    def test_corrupt_count_detected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "n_jobs": 3,
                    "stats": None,
                    "arrival_times": [(0.5).hex()],
                }
            )
        )
        with pytest.raises(ValueError, match="corrupt"):
            load_trace(path)

    def test_corrupt_ordering_detected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "n_jobs": 2,
                    "stats": None,
                    "arrival_times": [(2.0).hex(), (1.0).hex()],
                }
            )
        )
        with pytest.raises(ValueError, match="sorted"):
            load_trace(path)

    def test_replay_preserves_statistics(self, rng, tmp_path):
        jobs = PoissonWorkload(40.0, rng).generate(100.0)
        path = tmp_path / "trace.json"
        save_trace(jobs, path)
        replayed = load_trace(path)
        original_stats = trace_stats(jobs)
        replayed_stats = trace_stats(replayed)
        assert replayed_stats == original_stats
