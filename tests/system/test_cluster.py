"""Unit tests for cluster configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system import Cluster, grouped_cluster, paper_cluster, random_cluster


class TestPaperCluster:
    def test_matches_table1(self):
        c = paper_cluster()
        assert c.n_machines == 16
        assert c.names[0] == "C1"
        assert c.names[-1] == "C16"
        assert c.total_inverse == pytest.approx(5.1)

    def test_true_values_read_only(self):
        c = paper_cluster()
        with pytest.raises(ValueError):
            c.true_values[0] = 99.0

    def test_heterogeneity(self):
        assert paper_cluster().heterogeneity() == 10.0

    def test_latency_model(self):
        model = paper_cluster().latency_model()
        np.testing.assert_allclose(model.t, paper_cluster().true_values)


class TestGroupedCluster:
    def test_reproduces_paper_cluster(self):
        c = grouped_cluster([2, 3, 5, 6], [1.0, 2.0, 5.0, 10.0])
        np.testing.assert_allclose(c.true_values, paper_cluster().true_values)

    def test_mismatched_groups_rejected(self):
        with pytest.raises(ValueError):
            grouped_cluster([2, 3], [1.0])

    def test_zero_group_size_rejected(self):
        with pytest.raises(ValueError):
            grouped_cluster([0, 2], [1.0, 2.0])


class TestRandomCluster:
    def test_size_and_range(self, rng):
        c = random_cluster(40, rng, t_range=(2.0, 8.0))
        assert c.n_machines == 40
        assert np.all(c.true_values >= 2.0)
        assert np.all(c.true_values <= 8.0)

    def test_reproducible(self):
        a = random_cluster(10, np.random.default_rng(1))
        b = random_cluster(10, np.random.default_rng(1))
        np.testing.assert_allclose(a.true_values, b.true_values)

    def test_log_uniform_vs_uniform_differ(self):
        a = random_cluster(200, np.random.default_rng(2), log_uniform=True)
        b = random_cluster(200, np.random.default_rng(2), log_uniform=False)
        # Log-uniform concentrates more machines at the fast end.
        assert np.median(a.true_values) < np.median(b.true_values)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            random_cluster(0, rng)
        with pytest.raises(ValueError):
            random_cluster(3, rng, t_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            random_cluster(3, rng, t_range=(0.0, 1.0))


class TestClusterOperations:
    def test_subset(self):
        c = paper_cluster()
        sub = c.subset(np.array([0, 5, 10]))
        assert sub.names == ("C1", "C6", "C11")
        np.testing.assert_allclose(sub.true_values, [1.0, 5.0, 10.0])

    def test_len(self):
        assert len(paper_cluster()) == 16

    def test_names_length_validated(self):
        with pytest.raises(ValueError, match="names"):
            Cluster(true_values=np.array([1.0, 2.0]), names=("a",))

    def test_processing_rates(self):
        c = grouped_cluster([1, 1], [2.0, 4.0])
        np.testing.assert_allclose(c.processing_rates, [0.5, 0.25])
