"""Unit tests for cluster config serialisation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.system import paper_cluster, random_cluster
from repro.system.configio import (
    cluster_from_dict,
    cluster_to_dict,
    load_cluster,
    paper_cluster_document,
    save_cluster,
)


class TestRoundTrip:
    def test_paper_cluster_round_trips(self, tmp_path):
        cluster = paper_cluster()
        path = tmp_path / "table1.json"
        save_cluster(cluster, path, description="Table 1")
        loaded = load_cluster(path)
        np.testing.assert_allclose(loaded.true_values, cluster.true_values)
        assert loaded.names == cluster.names

    def test_random_cluster_round_trips(self, rng, tmp_path):
        cluster = random_cluster(23, rng)
        path = tmp_path / "c.json"
        save_cluster(cluster, path)
        loaded = load_cluster(path)
        np.testing.assert_allclose(loaded.true_values, cluster.true_values)

    def test_description_preserved(self, tmp_path):
        path = tmp_path / "c.json"
        save_cluster(paper_cluster(), path, description="hello")
        assert json.loads(path.read_text())["description"] == "hello"


class TestSchemaValidation:
    def test_bad_version(self):
        with pytest.raises(ValueError, match="format"):
            cluster_from_dict({"format_version": 7, "machines": []})

    def test_empty_machines(self):
        with pytest.raises(ValueError, match="non-empty"):
            cluster_from_dict({"format_version": 1, "machines": []})

    def test_missing_fields(self):
        with pytest.raises(ValueError, match="true_value"):
            cluster_from_dict(
                {"format_version": 1, "machines": [{"name": "C1"}]}
            )

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            cluster_from_dict(
                {
                    "format_version": 1,
                    "machines": [
                        {"name": "C1", "true_value": 1.0},
                        {"name": "C1", "true_value": 2.0},
                    ],
                }
            )

    def test_nonpositive_value_rejected_by_cluster(self):
        with pytest.raises(ValueError):
            cluster_from_dict(
                {
                    "format_version": 1,
                    "machines": [{"name": "C1", "true_value": 0.0}],
                }
            )


class TestReferenceDocument:
    def test_paper_document_loads_to_table1(self):
        cluster = cluster_from_dict(paper_cluster_document())
        assert cluster.n_machines == 16
        assert cluster.total_inverse == pytest.approx(5.1)

    def test_paper_document_mentions_the_paper(self):
        assert "IPDPS" in paper_cluster_document()["description"]
