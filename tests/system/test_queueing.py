"""Unit tests for the vectorised queue simulator, validating the
latency models against queueing theory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency import MG1LatencyModel, MM1LatencyModel
from repro.system import simulate_mg1, simulate_mm1
from repro.system.queueing import lindley_waits


class TestLindleyRecursion:
    def test_matches_scalar_recursion(self, rng):
        interarrival = rng.exponential(1.0, size=499)
        service = rng.exponential(0.7, size=500)
        vectorised = lindley_waits(interarrival, service)
        w = 0.0
        scalar = [0.0]
        for k in range(499):
            w = max(0.0, w + service[k] - interarrival[k])
            scalar.append(w)
        np.testing.assert_allclose(vectorised, scalar, atol=1e-12)

    def test_first_job_never_waits(self, rng):
        waits = lindley_waits(rng.exponential(1.0, size=9), rng.exponential(1.0, size=10))
        assert waits[0] == 0.0

    def test_no_waiting_when_arrivals_sparse(self):
        # Service 1s, gaps 10s: nobody ever queues.
        waits = lindley_waits(np.full(9, 10.0), np.ones(10))
        np.testing.assert_allclose(waits, 0.0)

    def test_pure_backlog_when_arrivals_instant(self):
        # All arrive together: job k waits for k prior services.
        waits = lindley_waits(np.zeros(4), np.ones(5))
        np.testing.assert_allclose(waits, [0, 1, 2, 3, 4])

    def test_single_job(self):
        np.testing.assert_allclose(lindley_waits(np.array([]), np.array([2.0])), [0.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lindley_waits(np.ones(5), np.ones(5))

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            lindley_waits(np.array([-1.0]), np.ones(2))


class TestMM1Validation:
    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_sojourn_matches_latency_model(self, rho, rng):
        mu = 2.0
        x = rho * mu
        stats = simulate_mm1(x, mu, n_jobs=150_000, rng=rng)
        predicted = MM1LatencyModel([mu]).per_job([x])[0]
        assert stats.mean_sojourn == pytest.approx(predicted, rel=0.05)

    def test_utilisation_measured(self, rng):
        stats = simulate_mm1(1.0, 2.0, n_jobs=100_000, rng=rng)
        assert stats.utilisation == pytest.approx(0.5, rel=0.05)

    def test_unstable_rejected(self, rng):
        with pytest.raises(ValueError, match="arrival_rate < service_rate"):
            simulate_mm1(2.0, 2.0, n_jobs=100, rng=rng)

    def test_needs_at_least_two_jobs(self, rng):
        with pytest.raises(ValueError):
            simulate_mm1(1.0, 2.0, n_jobs=1, rng=rng)

    def test_stderr_positive(self, rng):
        stats = simulate_mm1(1.0, 2.0, n_jobs=10_000, rng=rng)
        assert stats.sojourn_stderr() > 0.0


class TestMG1Validation:
    def test_deterministic_service_matches_pk(self, rng):
        # M/D/1: W_q = x E[S^2] / (2(1 - rho)) with E[S^2] = s^2.
        s, x = 0.5, 1.2
        service = np.full(200_000, s)
        stats = simulate_mg1(x, service, rng)
        predicted = MG1LatencyModel.deterministic([s]).per_job([x])[0]
        assert stats.mean_wait == pytest.approx(predicted, rel=0.05)

    def test_exponential_service_matches_pk(self, rng):
        mu, x = 2.0, 1.0
        service = rng.exponential(1.0 / mu, size=200_000)
        stats = simulate_mg1(x, service, rng)
        predicted = MG1LatencyModel.exponential([mu]).per_job([x])[0]
        assert stats.mean_wait == pytest.approx(predicted, rel=0.06)

    def test_light_load_linearisation_validated_empirically(self, rng):
        """The paper's Section 2 claim, end to end: at light load the
        M/G/1 waiting time behaves like the linear model t x with
        t = E[S^2]/2."""
        mu = 2.0
        x = 0.05  # 2.5% utilisation
        service = rng.exponential(1.0 / mu, size=400_000)
        stats = simulate_mg1(x, service, rng)
        linear = MG1LatencyModel.exponential([mu]).light_load_linearization()
        predicted = linear.per_job([x])[0]
        assert stats.mean_wait == pytest.approx(predicted, rel=0.15)

    def test_unstable_rejected(self, rng):
        with pytest.raises(ValueError, match="unstable"):
            simulate_mg1(3.0, np.full(100, 0.5), rng)

    def test_negative_service_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_mg1(0.5, np.array([1.0, -1.0]), rng)
