"""Unit tests for the machine process models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system import (
    LinearLatencyMachine,
    PoissonWorkload,
    QueueingMachine,
    Simulator,
)


def _drive(machine, jobs, sim=None):
    sim = sim or Simulator()
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda s, j=job: machine.submit(s, j))
    sim.run()
    return sim


class TestLinearLatencyMachine:
    def test_requires_configuration(self, rng):
        from repro.system.workload import Job

        machine = LinearLatencyMachine("C1", 1.0, rng)
        with pytest.raises(RuntimeError, match="not configured"):
            _drive(machine, [Job(0, 0.0)])

    def test_zero_load_refuses_jobs(self, rng):
        machine = LinearLatencyMachine("C1", 1.0, rng)
        machine.configure(0.0)
        from repro.system.workload import Job

        with pytest.raises(RuntimeError, match="zero load"):
            _drive(machine, [Job(0, 0.0)])

    def test_mean_sojourn_matches_linear_model(self, rng):
        # l(x) = t̃ x: with t̃ = 2 and x = 3 expect mean sojourn 6.
        machine = LinearLatencyMachine("C1", 2.0, rng)
        machine.configure(3.0)
        jobs = PoissonWorkload(3.0, rng).generate(3000.0)
        _drive(machine, jobs)
        stats = machine.stats()
        assert stats.completed == len(jobs)
        assert stats.mean_sojourn == pytest.approx(6.0, rel=0.05)

    def test_deterministic_sampler_is_exact(self, rng):
        machine = LinearLatencyMachine(
            "C1", 2.0, rng, service_sampler=lambda mean, r: mean
        )
        machine.configure(1.5)
        jobs = PoissonWorkload(1.5, rng).generate(50.0)
        _drive(machine, jobs)
        assert machine.stats().mean_sojourn == pytest.approx(3.0)

    def test_negative_sampler_rejected(self, rng):
        machine = LinearLatencyMachine(
            "C1", 1.0, rng, service_sampler=lambda mean, r: -1.0
        )
        machine.configure(1.0)
        from repro.system.workload import Job

        with pytest.raises(ValueError, match="negative"):
            _drive(machine, [Job(0, 0.0)])

    def test_negative_configuration_rejected(self, rng):
        machine = LinearLatencyMachine("C1", 1.0, rng)
        with pytest.raises(ValueError):
            machine.configure(-1.0)

    def test_empty_stats(self, rng):
        machine = LinearLatencyMachine("C1", 1.0, rng)
        stats = machine.stats()
        assert stats.is_empty
        assert np.isnan(stats.mean_sojourn)


class TestSubmitBatch:
    def test_deterministic_batch_matches_per_job_exactly(self):
        sampler = lambda mean, r: mean
        batch_sampler = lambda mean, size, r: np.full(size, mean)
        per_job = LinearLatencyMachine(
            "C1", 2.0, np.random.default_rng(1), service_sampler=sampler
        )
        batched = LinearLatencyMachine(
            "C1", 2.0, np.random.default_rng(1),
            service_sampler=sampler, batch_service_sampler=batch_sampler,
        )
        per_job.configure(1.5)
        batched.configure(1.5)
        jobs = PoissonWorkload(1.5, np.random.default_rng(2)).generate(50.0)
        _drive(per_job, jobs)
        batched.submit_batch(np.array([j.arrival_time for j in jobs]))
        # Bit-identical floats, not approximately equal: the batched
        # path records (arrival + duration) - arrival on purpose.
        assert batched.sojourn_times == per_job.sojourn_times
        assert batched._busy_time == per_job._busy_time

    def test_default_sampler_draws_one_exponential_block(self, rng):
        machine = LinearLatencyMachine("C1", 2.0, np.random.default_rng(3))
        machine.configure(3.0)
        arrivals = np.sort(np.random.default_rng(4).uniform(0, 3000.0, 9000))
        completions = machine.submit_batch(arrivals)
        assert completions.shape == arrivals.shape
        assert np.all(completions >= arrivals)
        assert machine.stats().mean_sojourn == pytest.approx(6.0, rel=0.05)

    def test_custom_scalar_sampler_falls_back_to_a_loop(self):
        calls = []

        def sampler(mean, r):
            calls.append(mean)
            return mean

        machine = LinearLatencyMachine(
            "C1", 2.0, np.random.default_rng(5), service_sampler=sampler
        )
        machine.configure(1.0)
        machine.submit_batch(np.array([0.0, 1.0, 2.0]))
        assert calls == [2.0, 2.0, 2.0]

    def test_empty_batch_is_a_no_op(self, rng):
        machine = LinearLatencyMachine("C1", 1.0, rng)
        machine.configure(1.0)
        assert machine.submit_batch(np.empty(0)).size == 0
        assert machine.stats().is_empty

    def test_unconfigured_machine_rejected(self, rng):
        machine = LinearLatencyMachine("C1", 1.0, rng)
        with pytest.raises(RuntimeError, match="not configured"):
            machine.submit_batch(np.array([0.0]))

    def test_zero_load_refuses_jobs(self, rng):
        machine = LinearLatencyMachine("C1", 1.0, rng)
        machine.configure(0.0)
        with pytest.raises(RuntimeError, match="zero load"):
            machine.submit_batch(np.array([0.0]))

    def test_bad_batch_sampler_shape_rejected(self, rng):
        machine = LinearLatencyMachine(
            "C1", 1.0, rng,
            batch_service_sampler=lambda mean, size, r: np.zeros(size + 1),
        )
        machine.configure(1.0)
        with pytest.raises(ValueError, match="durations"):
            machine.submit_batch(np.array([0.0, 1.0]))

    def test_negative_batch_duration_rejected(self, rng):
        machine = LinearLatencyMachine(
            "C1", 1.0, rng,
            batch_service_sampler=lambda mean, size, r: np.full(size, -1.0),
        )
        machine.configure(1.0)
        with pytest.raises(ValueError, match="negative"):
            machine.submit_batch(np.array([0.0]))


class TestQueueingMachine:
    def test_mm1_sojourn_matches_theory(self, rng):
        # M/M/1 at rho = 0.5: sojourn = 1/(mu - x) = 1.
        machine = QueueingMachine("Q1", service_rate=2.0, rng=rng)
        jobs = PoissonWorkload(1.0, rng).generate(20000.0)
        _drive(machine, jobs)
        assert machine.stats().mean_sojourn == pytest.approx(1.0, rel=0.07)

    def test_fifo_backlog(self, rng):
        # Deterministic service of 1s with two arrivals 0.5s apart:
        # second job waits for the first.
        machine = QueueingMachine(
            "Q1", service_rate=1.0, rng=rng, service_sampler=lambda mean, r: 1.0
        )
        from repro.system.workload import Job

        sim = Simulator()
        _drive(machine, [Job(0, 0.0), Job(1, 0.5)], sim)
        assert machine.sojourn_times[0] == pytest.approx(1.0)
        assert machine.sojourn_times[1] == pytest.approx(1.5)

    def test_light_load_sojourn_is_service_time(self, rng):
        machine = QueueingMachine("Q1", service_rate=10.0, rng=rng)
        jobs = PoissonWorkload(0.01, rng).generate(100000.0)
        _drive(machine, jobs)
        assert machine.stats().mean_sojourn == pytest.approx(0.1, rel=0.08)

    def test_busy_time_accumulates(self, rng):
        machine = QueueingMachine(
            "Q1", service_rate=1.0, rng=rng, service_sampler=lambda mean, r: 0.25
        )
        from repro.system.workload import Job

        _drive(machine, [Job(0, 0.0), Job(1, 10.0)])
        assert machine.stats().total_busy_time == pytest.approx(0.5)
