"""Unit tests for workload generation and routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system import DeterministicWorkload, PoissonWorkload, split_workload
from repro.system.workload import split_assignments
from repro.system.workload import Job


class TestPoissonWorkload:
    def test_rate_matches_on_average(self, rng):
        workload = PoissonWorkload(50.0, rng)
        jobs = workload.generate(100.0)
        assert len(jobs) == pytest.approx(5000, rel=0.05)

    def test_jobs_sorted_by_arrival(self, rng):
        jobs = PoissonWorkload(20.0, rng).generate(10.0)
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)

    def test_arrivals_within_window(self, rng):
        jobs = PoissonWorkload(20.0, rng).generate(5.0)
        assert all(0.0 <= j.arrival_time < 5.0 for j in jobs)

    def test_job_ids_sequential(self, rng):
        jobs = PoissonWorkload(20.0, rng).generate(5.0)
        assert [j.job_id for j in jobs] == list(range(len(jobs)))

    def test_exponential_gaps(self, rng):
        # Gap mean should be 1/rate; a crude check of Poisson-ness.
        jobs = PoissonWorkload(100.0, rng).generate(200.0)
        gaps = np.diff([j.arrival_time for j in jobs])
        assert gaps.mean() == pytest.approx(0.01, rel=0.05)
        assert gaps.std() == pytest.approx(0.01, rel=0.1)

    def test_reproducible(self):
        a = PoissonWorkload(10.0, np.random.default_rng(3)).generate(5.0)
        b = PoissonWorkload(10.0, np.random.default_rng(3)).generate(5.0)
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            PoissonWorkload(0.0, rng)
        with pytest.raises(ValueError):
            PoissonWorkload(1.0, rng).generate(0.0)

    def test_arrival_iter(self, rng):
        jobs = list(PoissonWorkload(10.0, rng).arrival_iter(2.0))
        assert all(isinstance(j, Job) for j in jobs)


class TestDeterministicWorkload:
    def test_exact_count(self):
        jobs = DeterministicWorkload(4.0).generate(2.5)
        assert len(jobs) == 10

    def test_equally_spaced(self):
        jobs = DeterministicWorkload(4.0).generate(1.0)
        gaps = np.diff([j.arrival_time for j in jobs])
        np.testing.assert_allclose(gaps, 0.25)


class TestSplitWorkload:
    def _jobs(self, n: int) -> list[Job]:
        return [Job(job_id=i, arrival_time=float(i)) for i in range(n)]

    def test_every_job_routed_exactly_once(self, rng):
        jobs = self._jobs(1000)
        buckets = split_workload(jobs, np.array([0.5, 0.3, 0.2]), rng)
        assert sum(len(b) for b in buckets) == 1000
        seen = sorted(j.job_id for b in buckets for j in b)
        assert seen == list(range(1000))

    def test_fractions_respected_on_average(self, rng):
        jobs = self._jobs(20000)
        buckets = split_workload(jobs, np.array([0.7, 0.3]), rng)
        assert len(buckets[0]) / 20000 == pytest.approx(0.7, abs=0.02)

    def test_zero_fraction_gets_nothing(self, rng):
        jobs = self._jobs(100)
        buckets = split_workload(jobs, np.array([1.0, 0.0]), rng)
        assert len(buckets[1]) == 0

    def test_empty_stream(self, rng):
        buckets = split_workload([], np.array([0.5, 0.5]), rng)
        assert buckets == [[], []]

    def test_fractions_must_sum_to_one(self, rng):
        with pytest.raises(ValueError, match="sum to 1"):
            split_workload(self._jobs(5), np.array([0.5, 0.6]), rng)

    def test_negative_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            split_workload(self._jobs(5), np.array([1.5, -0.5]), rng)

    def test_order_preserved_within_bucket(self, rng):
        jobs = self._jobs(500)
        buckets = split_workload(jobs, np.array([0.5, 0.5]), rng)
        for bucket in buckets:
            ids = [j.job_id for j in bucket]
            assert ids == sorted(ids)


class TestGenerateTimes:
    """The array entry point the batched execution engine uses."""

    def test_same_stream_as_generate(self):
        times = PoissonWorkload(20.0, np.random.default_rng(6)).generate_times(10.0)
        jobs = PoissonWorkload(20.0, np.random.default_rng(6)).generate(10.0)
        assert np.array_equal(times, np.array([j.arrival_time for j in jobs]))

    def test_sorted_and_in_window(self, rng):
        times = PoissonWorkload(30.0, rng).generate_times(5.0)
        assert np.all(np.diff(times) >= 0.0)
        assert np.all((times >= 0.0) & (times < 5.0))

    def test_deterministic_times_match_generate(self):
        workload = DeterministicWorkload(4.0)
        times = workload.generate_times(2.5)
        assert np.array_equal(
            times, np.array([j.arrival_time for j in workload.generate(2.5)])
        )
        assert np.array_equal(times, np.arange(10) / 4.0)


class TestSplitAssignments:
    """The vectorised routing core shared by both execution engines."""

    def test_same_buckets_as_split_workload(self):
        jobs = [Job(i, float(i)) for i in range(300)]
        fractions = np.array([0.2, 0.5, 0.3])
        buckets = split_workload(jobs, fractions, np.random.default_rng(8))
        choices = split_assignments(len(jobs), fractions, np.random.default_rng(8))
        for machine, bucket in enumerate(buckets):
            assert [j.job_id for j in bucket] == list(np.flatnonzero(choices == machine))

    def test_empty_stream_consumes_no_randomness(self):
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        empty = split_assignments(0, np.array([0.5, 0.5]), rng_a)
        assert empty.size == 0 and empty.dtype == np.int64
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            split_assignments(5, np.array([[0.5, 0.5]]), rng)
        with pytest.raises(ValueError, match="non-negative"):
            split_assignments(5, np.array([1.5, -0.5]), rng)
        with pytest.raises(ValueError, match="sum to 1"):
            split_assignments(5, np.array([0.5, 0.6]), rng)
