"""Unit tests for the discrete-event simulation core."""

from __future__ import annotations

import pytest

from repro.system import EventQueue, Simulator


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda s: order.append("b"))
        q.push(1.0, lambda s: order.append("a"))
        q.push(3.0, lambda s: order.append("c"))
        while (e := q.pop()) is not None:
            e.handler(None)
        assert order == ["a", "b", "c"]

    def test_fifo_tiebreak_for_simultaneous_events(self):
        q = EventQueue()
        order = []
        for k in range(5):
            q.push(1.0, lambda s, k=k: order.append(k))
        while (e := q.pop()) is not None:
            e.handler(None)
        assert order == [0, 1, 2, 3, 4]

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        event = q.push(1.0, lambda s: fired.append(1))
        event.cancel()
        assert q.pop() is None
        assert fired == []

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda s: None)
        q.push(2.0, lambda s: None)
        e1.cancel()
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda s: None)
        q.push(2.0, lambda s: None)
        e1.cancel()
        assert q.peek_time() == 2.0

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, lambda s: None)
        assert q


class TestLiveCounter:
    """The O(1) size counter stays exact through every lifecycle path."""

    def test_consistent_through_push_cancel_pop(self):
        q = EventQueue()
        events = [q.push(float(k), lambda s: None) for k in range(10)]
        assert len(q) == 10
        for event in events[::2]:
            event.cancel()
        assert len(q) == 5
        popped = 0
        while q.pop() is not None:
            popped += 1
            assert len(q) == 5 - popped
        assert popped == 5
        assert len(q) == 0 and not q

    def test_double_cancel_decrements_once(self):
        q = EventQueue()
        event = q.push(1.0, lambda s: None)
        q.push(2.0, lambda s: None)
        event.cancel()
        event.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_is_harmless(self):
        # A stale handle to an already-delivered event must not push
        # the live count negative.
        q = EventQueue()
        event = q.push(1.0, lambda s: None)
        q.push(2.0, lambda s: None)
        assert q.pop() is event
        event.cancel()
        assert len(q) == 1
        assert q.pop() is not None
        assert len(q) == 0

    def test_peek_pruning_keeps_count_consistent(self):
        q = EventQueue()
        head = q.push(1.0, lambda s: None)
        q.push(2.0, lambda s: None)
        head.cancel()
        assert q.peek_time() == 2.0  # prunes the cancelled head
        assert len(q) == 1


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda s: times.append(s.now))
        sim.schedule(0.5, lambda s: times.append(s.now))
        sim.run()
        assert times == [0.5, 1.5]
        assert sim.now == 1.5

    def test_handlers_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def first(s: Simulator) -> None:
            fired.append(("first", s.now))
            s.schedule(2.0, lambda s2: fired.append(("second", s2.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 3.0)]

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(5.0, lambda s: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock advanced to the horizon
        sim.run()
        assert fired == [1, 5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda s: None)

    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda s: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda s: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        for k in range(7):
            sim.schedule(float(k), lambda s: None)
        sim.run()
        assert sim.events_processed == 7

    def test_pending_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        assert sim.pending() == 2
        sim.run(until=1.5)
        assert sim.pending() == 1

    def test_cancelled_event_not_processed(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda s: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_deterministic_large_run(self):
        # A chain of self-scheduling events: stable order and timing.
        sim = Simulator()
        count = 0

        def tick(s: Simulator) -> None:
            nonlocal count
            count += 1
            if count < 1000:
                s.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert count == 1000
        assert sim.now == pytest.approx(0.999)
