"""Integration tests for the end-to-end protocol runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import ManipulativeAgent, TruthfulAgent
from repro.mechanism import VerificationMechanism
from repro.protocol import run_protocol
from repro.protocol.messages import (
    AllocationNotice,
    BidReply,
    BidRequest,
    CompletionReport,
    PaymentNotice,
)
from repro.system.cluster import paper_cluster


def _truthful_agents():
    return [TruthfulAgent(t) for t in paper_cluster().true_values]


class TestMessageComplexity:
    def test_exactly_five_messages_per_machine(self, rng):
        result = run_protocol(_truthful_agents(), 20.0, duration=5.0, rng=rng)
        n = 16
        assert result.network.total_messages == 5 * n
        for message_type in (
            BidRequest, BidReply, AllocationNotice, CompletionReport, PaymentNotice
        ):
            assert result.network.messages_of(message_type) == n

    def test_scales_linearly_with_machines(self, rng):
        agents = [TruthfulAgent(1.0), TruthfulAgent(2.0), TruthfulAgent(5.0)]
        result = run_protocol(agents, 6.0, duration=5.0, rng=rng)
        assert result.network.total_messages == 15


class TestEstimationAccuracy:
    def test_noise_free_estimation_is_nearly_exact(self, rng):
        # Deterministic service: only routing granularity remains.
        result = run_protocol(
            _truthful_agents(), 20.0, duration=300.0,
            rng=rng, deterministic_service=True,
        )
        assert result.estimation_relative_error.max() < 0.05

    def test_estimation_error_shrinks_with_duration(self):
        short = run_protocol(
            _truthful_agents(), 20.0, duration=20.0,
            rng=np.random.default_rng(1),
        )
        long = run_protocol(
            _truthful_agents(), 20.0, duration=2000.0,
            rng=np.random.default_rng(1),
        )
        assert (
            long.estimation_relative_error.mean()
            < short.estimation_relative_error.mean()
        )

    def test_detects_a_slow_executor(self, rng):
        agents = _truthful_agents()
        agents[0] = ManipulativeAgent(1.0, bid_factor=1.0, execution_factor=3.0)
        result = run_protocol(agents, 20.0, duration=500.0, rng=rng)
        # The verification step must estimate t̂_1 near 3, not near the bid 1.
        assert result.estimated_execution_values[0] == pytest.approx(3.0, rel=0.15)


class TestEconomicsMatchClosedForm:
    def test_truthful_latency_near_optimum(self, rng):
        result = run_protocol(_truthful_agents(), 20.0, duration=1000.0, rng=rng)
        assert result.outcome.realised_latency == pytest.approx(400 / 5.1, rel=0.05)

    def test_low2_utility_matches_closed_form(self, rng):
        agents = _truthful_agents()
        agents[0] = ManipulativeAgent(1.0, bid_factor=0.5, execution_factor=2.0)
        result = run_protocol(agents, 20.0, duration=1000.0, rng=rng)
        closed = VerificationMechanism().run(
            np.array([a.bid() for a in agents]),
            20.0,
            np.array([a.execution_value() for a in agents]),
        )
        assert result.outcome.payments.utility[0] == pytest.approx(
            float(closed.payments.utility[0]), rel=0.1
        )
        assert result.outcome.payments.utility[0] < 0.0

    def test_payments_delivered_match_outcome(self, rng):
        # What each machine received over the network must equal the
        # outcome's payment vector (no bookkeeping drift).
        agents = _truthful_agents()[:4]
        result = run_protocol(agents, 5.0, duration=50.0, rng=rng)
        assert result.outcome is not None


class TestLossyRuntime:
    def test_protocol_completes_over_lossy_links(self, rng):
        result = run_protocol(
            _truthful_agents(), 20.0, duration=30.0, rng=rng,
            drop_probability=0.3,
        )
        # Exactly-once at the application layer: still 5n payloads.
        assert result.network.total_messages == 5 * 16
        assert result.outcome.realised_latency == pytest.approx(
            400 / 5.1, rel=0.2
        )

    def test_zero_drop_uses_plain_network(self, rng):
        result = run_protocol(
            _truthful_agents(), 20.0, duration=10.0, rng=rng,
            drop_probability=0.0,
        )
        assert result.network.total_messages == 5 * 16


class TestRelativeErrorEdgeCases:
    def _result(self, true_values, estimates, loads):
        from types import SimpleNamespace

        from repro.protocol.runtime import ProtocolResult

        return ProtocolResult(
            outcome=SimpleNamespace(loads=np.asarray(loads, dtype=float)),
            true_execution_values=np.asarray(true_values, dtype=float),
            estimated_execution_values=np.asarray(estimates, dtype=float),
            network=None,
            jobs_routed=0,
            simulated_time=0.0,
        )

    def test_zero_load_entry_is_nan_not_a_warning(self):
        import warnings

        result = self._result([1.0, 2.0], [1.1, 8.0], [0.5, 0.0])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any divide warning fails here
            error = result.estimation_relative_error
        assert error[0] == pytest.approx(0.1)
        assert np.isnan(error[1])

    def test_zero_true_value_entry_is_nan(self):
        result = self._result([0.0, 2.0], [1.0, 2.0], [0.5, 0.5])
        error = result.estimation_relative_error
        assert np.isnan(error[0])
        assert error[1] == 0.0

    def test_all_defined_entries_unchanged(self):
        result = self._result([1.0, 2.0], [1.5, 1.0], [0.5, 0.5])
        assert result.estimation_relative_error == pytest.approx([0.5, 0.5])


class TestRuntimeValidation:
    def test_empty_agents_rejected(self, rng):
        with pytest.raises(ValueError, match="non-empty"):
            run_protocol([], 5.0, rng=rng)

    @pytest.mark.parametrize("drop", [-0.1, 1.0, 1.5])
    def test_invalid_drop_probability_rejected(self, drop, rng):
        with pytest.raises(ValueError, match="drop_probability"):
            run_protocol(
                [TruthfulAgent(1.0), TruthfulAgent(2.0)],
                5.0,
                rng=rng,
                drop_probability=drop,
            )

    def test_nonpositive_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            run_protocol([TruthfulAgent(1.0)], 0.0, rng=rng)

    def test_jobs_routed_counted(self, rng):
        result = run_protocol(_truthful_agents(), 20.0, duration=50.0, rng=rng)
        assert result.jobs_routed == pytest.approx(1000, rel=0.2)

    def test_simulated_time_advances(self, rng):
        result = run_protocol(_truthful_agents(), 20.0, duration=50.0, rng=rng)
        assert result.simulated_time >= 50.0 * 0.9
