"""Unit tests for the execution-value estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocol import estimate_execution_value


class TestPointEstimate:
    def test_exact_on_noise_free_observations(self):
        # Sojourn = t̃ x exactly -> estimate = t̃.
        estimate = estimate_execution_value(np.full(100, 6.0), allocated_load=3.0)
        assert estimate.value == pytest.approx(2.0)

    def test_unbiased_under_exponential_noise(self, rng):
        t, x = 2.0, 3.0
        sojourns = rng.exponential(t * x, size=200_000)
        estimate = estimate_execution_value(sojourns, x)
        assert estimate.value == pytest.approx(t, rel=0.02)

    def test_stderr_shrinks_with_observations(self, rng):
        t, x = 2.0, 3.0
        small = estimate_execution_value(rng.exponential(t * x, 100), x)
        large = estimate_execution_value(rng.exponential(t * x, 10_000), x)
        assert large.stderr < small.stderr

    def test_stderr_scaling_rate(self, rng):
        # stderr ~ cv / sqrt(m): quadrupling m halves the error.
        t, x = 1.0, 1.0
        m = 40_000
        small = estimate_execution_value(rng.exponential(t * x, m), x)
        large = estimate_execution_value(rng.exponential(t * x, 4 * m), x)
        assert large.stderr == pytest.approx(small.stderr / 2.0, rel=0.1)

    def test_ci_contains_truth_typically(self, rng):
        t, x = 2.0, 3.0
        hits = 0
        for _ in range(100):
            estimate = estimate_execution_value(rng.exponential(t * x, 2000), x)
            lo, hi = estimate.ci95
            hits += lo <= t <= hi
        assert hits >= 85  # ~95 expected

    def test_single_observation_has_infinite_stderr(self):
        estimate = estimate_execution_value(np.array([5.0]), 1.0)
        assert np.isinf(estimate.stderr)
        assert estimate.n_observations == 1


class TestClamping:
    def test_clamp_raises_low_estimates(self):
        estimate = estimate_execution_value(np.full(10, 1.0), allocated_load=1.0)
        clamped = estimate.clamped(2.0)
        assert clamped.value == 2.0
        assert clamped.n_observations == estimate.n_observations

    def test_clamp_keeps_high_estimates(self):
        estimate = estimate_execution_value(np.full(10, 5.0), allocated_load=1.0)
        assert estimate.clamped(2.0) is estimate


class TestValidation:
    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError):
            estimate_execution_value(np.array([]), 1.0)

    def test_zero_load_rejected(self):
        with pytest.raises(ValueError):
            estimate_execution_value(np.array([1.0]), 0.0)

    def test_negative_sojourn_rejected(self):
        with pytest.raises(ValueError):
            estimate_execution_value(np.array([1.0, -1.0]), 1.0)
