"""Parity suite for the batched job-event execution engine.

DESIGN.md §11 states the contract: with ``deterministic_service=True``
the batched engine must be *bit-identical* to the per-job event engine
— same RNG stream, same sojourn floats, same mechanism outcome, same
final clock — while with stochastic service it consumes the same
stream shape and matches the verification estimates to statistical
tolerance.  These tests pin both halves, plus the paper's 16-machine
truthful round through the batched path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import ManipulativeAgent, TruthfulAgent
from repro.observability.instrumentation import instrumented
from repro.protocol import run_protocol
from repro.protocol.execution import (
    EXECUTION_MODES,
    dispatch_batched,
    resolve_execution,
)
from repro.protocol.messages import (
    AllocationNotice,
    BidReply,
    BidRequest,
    CompletionReport,
    PaymentNotice,
)
from repro.system.cluster import paper_cluster
from repro.system.des import Simulator
from repro.system.machine import LinearLatencyMachine


def _truthful_agents():
    return [TruthfulAgent(t) for t in paper_cluster().true_values]


def _round(execution, *, seed, agents, rate, duration=8.0, drop=0.0,
           deterministic=True):
    """One protocol round with a fresh generator (stream parity needs it)."""
    return run_protocol(
        agents,
        rate,
        duration=duration,
        rng=np.random.default_rng(seed),
        deterministic_service=deterministic,
        drop_probability=drop,
        execution=execution,
    )


def _assert_bit_identical(event, batched):
    """Every observable of the round must match exactly, not approximately."""
    assert np.array_equal(
        event.estimated_execution_values, batched.estimated_execution_values
    )
    assert np.array_equal(event.outcome.loads, batched.outcome.loads)
    assert np.array_equal(
        event.outcome.payments.payment, batched.outcome.payments.payment
    )
    assert np.array_equal(
        event.outcome.payments.utility, batched.outcome.payments.utility
    )
    assert event.outcome.realised_latency == batched.outcome.realised_latency
    assert event.jobs_routed == batched.jobs_routed
    assert event.simulated_time == batched.simulated_time
    assert event.network.total_messages == batched.network.total_messages


class TestResolveExecution:
    def test_auto_picks_batched(self):
        assert resolve_execution("auto") == "batched"

    @pytest.mark.parametrize("mode", ["event", "batched"])
    def test_explicit_modes_honoured(self, mode):
        assert resolve_execution(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="execution"):
            resolve_execution("vectorised")

    def test_run_protocol_validates_execution(self, rng):
        with pytest.raises(ValueError, match="execution"):
            run_protocol(
                [TruthfulAgent(1.0)], 2.0, rng=rng, execution="bogus"
            )

    def test_modes_tuple_is_the_public_contract(self):
        assert EXECUTION_MODES == ("event", "batched", "auto")


class TestBitIdentity:
    """Deterministic service: the two engines are the same computation."""

    @given(
        n=st.integers(min_value=2, max_value=6),
        rate=st.sampled_from([2.0, 5.0, 11.0]),
        drop=st.sampled_from([0.0, 0.1, 0.3]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_equals_event_across_rounds(self, n, rate, drop, seed):
        values = np.random.default_rng(seed).uniform(1.0, 5.0, size=n)
        agents = [TruthfulAgent(float(t)) for t in values]
        event = _round("event", seed=seed + 1, agents=agents, rate=rate,
                       drop=drop)
        batched = _round("batched", seed=seed + 1, agents=agents, rate=rate,
                         drop=drop)
        _assert_bit_identical(event, batched)

    def test_paper_cluster_round_identical(self):
        event = _round("event", seed=7, agents=_truthful_agents(), rate=20.0,
                       duration=50.0)
        batched = _round("batched", seed=7, agents=_truthful_agents(),
                         rate=20.0, duration=50.0)
        _assert_bit_identical(event, batched)

    def test_identical_with_manipulative_agents(self):
        agents = _truthful_agents()
        agents[0] = ManipulativeAgent(1.0, bid_factor=0.5, execution_factor=2.0)
        event = _round("event", seed=3, agents=agents, rate=20.0, duration=30.0)
        batched = _round("batched", seed=3, agents=agents, rate=20.0,
                         duration=30.0)
        _assert_bit_identical(event, batched)

    def test_identical_over_lossy_links(self):
        event = _round("event", seed=11, agents=_truthful_agents(), rate=20.0,
                       duration=20.0, drop=0.25)
        batched = _round("batched", seed=11, agents=_truthful_agents(),
                         rate=20.0, duration=20.0, drop=0.25)
        _assert_bit_identical(event, batched)

    def test_auto_is_bit_identical_to_batched(self):
        auto = _round("auto", seed=5, agents=_truthful_agents(), rate=20.0)
        batched = _round("batched", seed=5, agents=_truthful_agents(),
                         rate=20.0)
        _assert_bit_identical(auto, batched)


class TestStochasticTolerance:
    """Exponential service: same stream shape, estimates agree statistically."""

    def test_estimates_match_truth_within_tolerance(self):
        batched = _round("batched", seed=2, agents=_truthful_agents(),
                         rate=20.0, duration=300.0, deterministic=False)
        assert batched.estimation_relative_error.mean() < 0.10

    def test_both_engines_estimate_the_same_truth(self):
        event = _round("event", seed=2, agents=_truthful_agents(), rate=20.0,
                       duration=300.0, deterministic=False)
        batched = _round("batched", seed=2, agents=_truthful_agents(),
                         rate=20.0, duration=300.0, deterministic=False)
        # Different draw granularity => different noise, same target.
        assert np.allclose(
            event.estimated_execution_values,
            batched.estimated_execution_values,
            rtol=0.35,
        )
        assert event.jobs_routed == batched.jobs_routed
        assert event.network.total_messages == batched.network.total_messages

    def test_detects_a_slow_executor_through_the_batched_path(self):
        agents = _truthful_agents()
        agents[0] = ManipulativeAgent(1.0, bid_factor=1.0, execution_factor=3.0)
        result = _round("batched", seed=4, agents=agents, rate=20.0,
                        duration=500.0, deterministic=False)
        assert result.estimated_execution_values[0] == pytest.approx(
            3.0, rel=0.15
        )


class TestPaperRegression:
    """The 16-machine L* = 400/5.1 ≈ 78.43 round survives batching."""

    def test_batched_truthful_latency_pins_paper_optimum(self):
        result = _round("batched", seed=0, agents=_truthful_agents(),
                        rate=20.0, duration=200.0)
        assert result.outcome.realised_latency == pytest.approx(
            400 / 5.1, rel=0.05
        )
        assert np.allclose(
            result.estimated_execution_values,
            paper_cluster().true_values,
            rtol=0.05,
        )

    def test_message_complexity_claim_untouched(self, rng):
        result = run_protocol(
            _truthful_agents(), 20.0, duration=5.0, rng=rng,
            execution="batched",
        )
        assert result.network.total_messages == 5 * 16
        for message_type in (
            BidRequest, BidReply, AllocationNotice, CompletionReport,
            PaymentNotice,
        ):
            assert result.network.messages_of(message_type) == 16


class TestEventHorizonSkip:
    def test_events_skipped_gauge_counts_the_saved_heap_events(self):
        with instrumented() as instr:
            result = _round("batched", seed=9, agents=_truthful_agents(),
                            rate=20.0, duration=10.0)
        skipped = instr.metrics.gauge("protocol.events_skipped").value
        # Two heap events per job in the event engine, one horizon no-op here.
        assert skipped == 2 * result.jobs_routed - 1

    def test_empty_stream_schedules_nothing(self, rng):
        sim = Simulator()
        machine = LinearLatencyMachine("C1", 1.0, rng)
        machine.configure(1.0)
        routed = dispatch_batched(
            sim, [machine], np.empty(0), np.empty(0, dtype=np.int64)
        )
        assert routed == 0
        assert sim.pending() == 0

    def test_horizon_matches_latest_completion(self, rng):
        event = _round("event", seed=13, agents=_truthful_agents(), rate=20.0,
                       duration=25.0)
        batched = _round("batched", seed=13, agents=_truthful_agents(),
                         rate=20.0, duration=25.0)
        assert batched.simulated_time == event.simulated_time
