"""Failure-injection tests: lossy links, crashes, timeouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import TruthfulAgent
from repro.mechanism import VerificationMechanism
from repro.protocol import (
    BidRequest,
    CrashingNode,
    FaultTolerantCoordinator,
    ProtocolPhase,
    ReliableNetwork,
    SimulatedNetwork,
)
from repro.protocol.coordinator import COORDINATOR_NAME, MachineNode
from repro.system import LinearLatencyMachine, Simulator


def _build(network_factory, crash: dict[int, str] | None = None, n: int = 4):
    """Wire a small protocol instance; returns (sim, net, coord, nodes)."""
    sim = Simulator()
    rng = np.random.default_rng(0)
    network = network_factory(sim)
    true_values = np.array([1.0, 2.0, 5.0, 10.0])[:n]
    names = [f"C{i+1}" for i in range(n)]
    nodes = []
    for i, (name, t) in enumerate(zip(names, true_values)):
        node = MachineNode(
            name=name,
            agent=TruthfulAgent(t),
            machine=LinearLatencyMachine(name, t, rng),
            network=network,
        )
        if crash and i in crash:
            node = CrashingNode(node, crash[i])
        network.register(name, node.handle)
        nodes.append(node)
    coordinator = FaultTolerantCoordinator(
        mechanism=VerificationMechanism(),
        machine_names=names,
        arrival_rate=6.0,
        network=network,
    )
    network.register(COORDINATOR_NAME, coordinator.handle)
    return sim, network, coordinator, nodes


class TestReliableNetworkUnit:
    def test_delivers_despite_drops(self):
        sim = Simulator()
        network = ReliableNetwork(sim, 0.5, np.random.default_rng(1))
        received = []
        network.register("C1", lambda m, s: received.append(m))
        for _ in range(20):
            network.send(BidRequest(sender="m", receiver="C1"))
        sim.run()
        assert len(received) == 20  # exactly once each, despite 50% loss
        assert network.dropped > 0
        assert network.transmissions > 40  # retransmits happened

    def test_no_duplicates_delivered(self):
        sim = Simulator()
        network = ReliableNetwork(sim, 0.4, np.random.default_rng(2))
        received = []
        network.register("C1", lambda m, s: received.append(m))
        message = BidRequest(sender="m", receiver="C1")
        network.send(message)
        sim.run()
        assert received == [message]

    def test_zero_loss_means_no_retransmits_delivered_twice(self):
        sim = Simulator()
        network = ReliableNetwork(sim, 0.0, np.random.default_rng(3))
        received = []
        network.register("C1", lambda m, s: received.append(1))
        network.send(BidRequest(sender="m", receiver="C1"))
        sim.run()
        assert received == [1]

    def test_invalid_drop_probability(self):
        with pytest.raises(ValueError):
            ReliableNetwork(Simulator(), 1.0, np.random.default_rng(0))

    def test_unknown_receiver(self):
        network = ReliableNetwork(Simulator(), 0.0, np.random.default_rng(0))
        with pytest.raises(KeyError):
            network.send(BidRequest(sender="m", receiver="ghost"))


class TestProtocolOverLossyLinks:
    def test_full_round_completes_at_30_percent_loss(self):
        sim, network, coordinator, nodes = _build(
            lambda s: ReliableNetwork(s, 0.3, np.random.default_rng(7))
        )
        coordinator.start()
        sim.run()
        assert coordinator.phase is ProtocolPhase.EXECUTING
        for node in nodes:
            node.machine.sojourn_times.append(0.5)
            node.report_completion()
        sim.run()
        assert coordinator.phase is ProtocolPhase.DONE
        assert all(n.received_payment is not None for n in nodes)

    def test_payments_identical_to_lossless_run(self):
        def run(drop: float, seed: int):
            sim, network, coordinator, nodes = _build(
                lambda s: ReliableNetwork(s, drop, np.random.default_rng(seed))
            )
            coordinator.start()
            sim.run()
            for node in nodes:
                node.machine.sojourn_times.append(0.5)
                node.report_completion()
            sim.run()
            return [n.received_payment.payment for n in nodes]

        assert run(0.0, 1) == pytest.approx(run(0.4, 2))


class TestCrashAndTimeout:
    def test_silent_machine_excluded_from_round(self):
        sim, network, coordinator, nodes = _build(
            SimulatedNetwork, crash={2: "immediately"}
        )
        coordinator.start()
        sim.run()
        assert coordinator.phase is ProtocolPhase.BIDDING  # stuck on C3
        coordinator.close_bidding()
        sim.run()
        assert coordinator.phase is ProtocolPhase.EXECUTING
        assert coordinator.excluded == ["C3"]
        assert len(coordinator.machine_names) == 3

    def test_allocation_covers_full_rate_over_responders(self):
        sim, network, coordinator, nodes = _build(
            SimulatedNetwork, crash={0: "immediately"}
        )
        coordinator.start()
        sim.run()
        coordinator.close_bidding()
        sim.run()
        assert coordinator._loads is not None
        assert coordinator._loads.sum() == pytest.approx(6.0)

    def test_missing_report_withholds_payment(self):
        sim, network, coordinator, nodes = _build(
            SimulatedNetwork, crash={1: "after_bid"}
        )
        coordinator.start()
        sim.run()
        assert coordinator.phase is ProtocolPhase.EXECUTING
        for i, node in enumerate(nodes):
            if i == 1:
                continue  # crashed after bidding: never reports
            node.machine.sojourn_times.append(0.5)
            node.report_completion()
        sim.run()
        assert coordinator.phase is ProtocolPhase.EXECUTING
        coordinator.close_reporting()
        sim.run()
        assert coordinator.phase is ProtocolPhase.DONE
        assert coordinator.withheld == ["C2"]
        crashed = nodes[1]
        assert crashed.inner.received_payment.payment == 0.0

    def test_missing_report_imputed_pessimistically(self):
        sim, network, coordinator, nodes = _build(
            SimulatedNetwork, crash={1: "after_bid"}
        )
        coordinator.start()
        sim.run()
        for i, node in enumerate(nodes):
            if i != 1:
                node.machine.sojourn_times.append(0.5)
                node.report_completion()
        sim.run()
        coordinator.close_reporting()
        sim.run()
        # Imputed execution value = factor * bid (bid of C2 is 2.0).
        assert coordinator.estimated_execution_values[1] == pytest.approx(
            coordinator.missing_report_factor * 2.0
        )

    def test_no_bids_at_deadline_is_an_error(self):
        sim, network, coordinator, nodes = _build(
            SimulatedNetwork,
            crash={0: "immediately", 1: "immediately", 2: "immediately", 3: "immediately"},
        )
        coordinator.start()
        sim.run()
        with pytest.raises(RuntimeError, match="no machine bid"):
            coordinator.close_bidding()

    def test_deadline_noop_when_everyone_answered(self):
        sim, network, coordinator, nodes = _build(SimulatedNetwork)
        coordinator.start()
        sim.run()
        phase_before = coordinator.phase
        coordinator.close_bidding()  # must be a harmless no-op
        assert coordinator.phase is phase_before
        assert coordinator.excluded == []

    def test_invalid_crash_point_rejected(self):
        sim, network, coordinator, nodes = _build(SimulatedNetwork)
        with pytest.raises(ValueError):
            CrashingNode(nodes[0], "sometime")


class TestVoidedRounds:
    def _all_crashed(self):
        return _build(
            SimulatedNetwork,
            crash={0: "immediately", 1: "immediately", 2: "immediately", 3: "immediately"},
        )

    def test_all_machines_silent_voids_cleanly(self):
        sim, network, coordinator, nodes = self._all_crashed()
        coordinator.start()
        sim.run()
        coordinator.close_bidding(void_if_empty=True)
        assert coordinator.phase is ProtocolPhase.VOIDED
        assert coordinator.excluded == ["C1", "C2", "C3", "C4"]
        assert coordinator.outcome is None
        assert all(n.inner.received_payment is None for n in nodes)

    def test_void_round_direct(self):
        sim, network, coordinator, nodes = _build(SimulatedNetwork)
        coordinator.void_round()  # IDLE: voiding is always safe
        assert coordinator.phase is ProtocolPhase.VOIDED

    def test_void_after_allocation_rejected(self):
        sim, network, coordinator, nodes = _build(SimulatedNetwork)
        coordinator.start()
        sim.run()
        assert coordinator.phase is ProtocolPhase.EXECUTING
        with pytest.raises(RuntimeError, match="already been announced"):
            coordinator.void_round()

    def test_crash_after_allocation_before_report_settles(self):
        # A machine that accepts its allocation but dies before
        # reporting: the round still settles, the dead machine is
        # imputed pessimistically and paid nothing.
        sim, network, coordinator, nodes = _build(
            SimulatedNetwork, crash={2: "after_bid"}
        )
        coordinator.start()
        sim.run()
        assert nodes[2].inner.allocated_load is not None  # it got load
        for i, node in enumerate(nodes):
            if i != 2:
                node.machine.sojourn_times.append(0.5)
                node.report_completion()
        sim.run()
        coordinator.close_reporting()
        sim.run()
        assert coordinator.phase is ProtocolPhase.DONE
        assert coordinator.withheld == ["C3"]
        assert nodes[2].inner.received_payment.payment == 0.0
        # Everyone else was paid normally.
        for i, node in enumerate(nodes):
            if i != 2:
                assert node.received_payment.payment > 0.0


class TestDedupUnderHeavyLoss:
    @pytest.mark.parametrize("drop", [0.5, 0.6])
    def test_exactly_once_delivery_at_majority_loss(self, drop):
        sim = Simulator()
        network = ReliableNetwork(
            sim, drop, np.random.default_rng(11), max_retries=2000
        )
        received = []
        network.register("C1", lambda m, s: received.append(m))
        messages = [BidRequest(sender="m", receiver="C1") for _ in range(30)]
        for message in messages:
            network.send(message)
        sim.run()
        # Every payload exactly once, order-independent (the payload
        # objects are identical by value, so compare identities).
        assert len(received) == 30
        assert {id(m) for m in received} == {id(m) for m in messages}
        assert network.dropped > network.transmissions * (drop - 0.2)

    def test_full_round_completes_at_half_loss(self):
        sim, network, coordinator, nodes = _build(
            lambda s: ReliableNetwork(
                s, 0.5, np.random.default_rng(21), max_retries=2000
            )
        )
        coordinator.start()
        sim.run()
        for node in nodes:
            node.machine.sojourn_times.append(0.5)
            node.report_completion()
        sim.run()
        assert coordinator.phase is ProtocolPhase.DONE
        assert all(n.received_payment is not None for n in nodes)
