"""Unit tests for the protocol message types."""

from __future__ import annotations

import pytest

from repro.protocol import (
    AllocationNotice,
    BidReply,
    BidRequest,
    CompletionReport,
    PaymentNotice,
)


class TestMessageValidation:
    def test_bid_reply_requires_positive_bid(self):
        with pytest.raises(ValueError):
            BidReply(sender="C1", receiver="mechanism", bid=0.0)

    def test_allocation_notice_rejects_negative_load(self):
        with pytest.raises(ValueError):
            AllocationNotice(sender="mechanism", receiver="C1", load=-1.0)

    def test_allocation_notice_accepts_zero_load(self):
        notice = AllocationNotice(sender="mechanism", receiver="C1", load=0.0)
        assert notice.load == 0.0

    def test_completion_report_rejects_negative_count(self):
        with pytest.raises(ValueError):
            CompletionReport(
                sender="C1", receiver="mechanism", jobs_completed=-1, mean_sojourn=1.0
            )

    def test_messages_are_immutable(self):
        request = BidRequest(sender="mechanism", receiver="C1")
        with pytest.raises(AttributeError):
            request.receiver = "C2"

    def test_payment_notice_fields(self):
        notice = PaymentNotice(
            sender="mechanism", receiver="C1",
            payment=5.0, compensation=3.0, bonus=2.0,
        )
        assert notice.payment == notice.compensation + notice.bonus
