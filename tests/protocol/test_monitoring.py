"""Unit tests for the online slowdown detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocol.monitoring import (
    CusumSlowdownDetector,
    detection_delay,
)


class TestDetectorMechanics:
    def test_honest_stream_rarely_flags(self, rng):
        detector = CusumSlowdownDetector(2.0, 3.0)
        sojourns = rng.exponential(6.0, size=20_000)  # exactly as declared
        assert detector.observe_many(sojourns) is None
        assert not detector.flagged

    def test_slow_stream_flags(self, rng):
        detector = CusumSlowdownDetector(2.0, 3.0)
        sojourns = rng.exponential(12.0, size=5_000)  # 2x slower
        alert = detector.observe_many(sojourns)
        assert alert is not None
        assert detector.flagged
        assert alert.mean_sojourn > 6.0

    def test_alert_fires_once(self, rng):
        detector = CusumSlowdownDetector(1.0, 1.0, threshold=1.0)
        first = detector.observe_many(rng.exponential(5.0, size=100))
        assert first is not None
        jobs_at_alert = first.jobs_observed
        again = detector.observe_many(rng.exponential(5.0, size=100))
        assert again.jobs_observed == jobs_at_alert  # same alert object

    def test_batch_with_multiple_crossings_latches_first(self):
        # Deterministic stream: with slack 0 and threshold 1, each
        # sojourn of 3x the expected mean adds +2 to the statistic, so
        # a batch of five such jobs crosses the threshold at job 1 and
        # would "cross" again at every subsequent job.  The contract is
        # one-shot: the alert latches at the FIRST crossing, the rest
        # of the batch is not consumed, and the state freezes there.
        detector = CusumSlowdownDetector(1.0, 1.0, threshold=1.0, slack=0.0)
        alert = detector.observe_many(np.full(5, 3.0))
        assert alert is not None
        assert alert.jobs_observed == 1
        assert detector.jobs_observed == 1  # batch tail not consumed
        assert detector.statistic == alert.statistic == 2.0

    def test_observe_many_on_latched_detector_consumes_nothing(self):
        detector = CusumSlowdownDetector(1.0, 1.0, threshold=1.0, slack=0.0)
        first = detector.observe_many(np.full(5, 3.0))
        again = detector.observe_many(np.full(10, 3.0))
        assert again is first  # the same latched SlowdownAlert object
        assert detector.jobs_observed == 1

    def test_statistic_resets_at_zero_floor(self):
        detector = CusumSlowdownDetector(1.0, 1.0, slack=0.0)
        detector.observe(0.0)  # much faster than declared
        assert detector.statistic == 0.0

    def test_negative_sojourn_rejected(self):
        detector = CusumSlowdownDetector(1.0, 1.0)
        with pytest.raises(ValueError):
            detector.observe(-1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CusumSlowdownDetector(0.0, 1.0)
        with pytest.raises(ValueError):
            CusumSlowdownDetector(1.0, 1.0, threshold=0.0)
        with pytest.raises(ValueError):
            CusumSlowdownDetector(1.0, 1.0, slack=-0.1)


class TestDetectionCharacteristics:
    def test_detects_big_slowdown_quickly(self):
        delay = detection_delay(
            1.0, 3.0, 2.0, np.random.default_rng(1)
        )
        assert delay is not None
        assert delay < 50

    def test_bigger_slowdowns_detected_faster(self):
        delays = []
        for factor in (1.5, 2.0, 4.0):
            per_seed = [
                detection_delay(1.0, factor, 2.0, np.random.default_rng(seed))
                for seed in range(20)
            ]
            delays.append(float(np.mean([d for d in per_seed if d is not None])))
        assert delays[0] > delays[1] > delays[2]

    def test_honest_false_alarm_rate_low(self):
        alarms = 0
        for seed in range(30):
            delay = detection_delay(
                1.0, 1.0, 2.0, np.random.default_rng(seed), max_jobs=2_000
            )
            alarms += delay is not None
        assert alarms <= 2  # <~7% false alarm over 2000 jobs

    def test_threshold_trades_delay_for_false_alarms(self):
        fast = [
            detection_delay(1.0, 2.0, 1.0, np.random.default_rng(s), threshold=2.0)
            for s in range(20)
        ]
        slow = [
            detection_delay(1.0, 2.0, 1.0, np.random.default_rng(s), threshold=20.0)
            for s in range(20)
        ]
        assert np.mean([d for d in fast if d]) < np.mean([d for d in slow if d])

    def test_subtle_slowdown_within_slack_escapes(self):
        # A 10% slowdown sits inside the 25% slack: undetectable by
        # design (the slack is the tolerance band).
        delay = detection_delay(
            1.0, 1.1, 2.0, np.random.default_rng(3), max_jobs=20_000
        )
        assert delay is None


class TestDetectionDelayContract:
    """The explicit-None contract of :func:`detection_delay`."""

    def test_never_fires_is_none_not_horizon(self):
        # An honest machine over a tiny horizon: the censored outcome
        # is None, never 0 and never max_jobs.
        delay = detection_delay(
            1.0, 1.0, 2.0, np.random.default_rng(0), max_jobs=5
        )
        assert delay is None

    def test_delay_is_within_one_and_max_jobs(self):
        # A massive slowdown against a hair-trigger threshold: the
        # alarm must land inside the documented [1, max_jobs] range.
        delay = detection_delay(
            1.0,
            50.0,
            2.0,
            np.random.default_rng(5),
            threshold=0.5,
            max_jobs=10,
        )
        assert delay is not None
        assert 1 <= delay <= 10

    def test_detection_on_final_job_counts(self):
        # Binary-search the smallest horizon at which a 3x slowdown is
        # caught; one job fewer must censor to None (so a detection
        # exactly on the last simulated job is reported, not dropped).
        rng_delay = detection_delay(1.0, 3.0, 2.0, np.random.default_rng(1))
        assert rng_delay is not None
        at_horizon = detection_delay(
            1.0, 3.0, 2.0, np.random.default_rng(1), max_jobs=rng_delay
        )
        below_horizon = detection_delay(
            1.0, 3.0, 2.0, np.random.default_rng(1), max_jobs=rng_delay - 1
        )
        assert at_horizon == rng_delay
        assert below_horizon is None

    @pytest.mark.parametrize("bad_max", [0, -1])
    def test_nonpositive_horizon_rejected(self, bad_max):
        with pytest.raises(ValueError, match="max_jobs"):
            detection_delay(
                1.0, 2.0, 1.0, np.random.default_rng(0), max_jobs=bad_max
            )

    @pytest.mark.parametrize("bad_true", [0.0, -1.0, float("nan")])
    def test_bad_true_execution_value_rejected(self, bad_true):
        with pytest.raises(ValueError, match="true_execution_value"):
            detection_delay(1.0, bad_true, 1.0, np.random.default_rng(0))
