"""Unit tests for the coordinator state machine (driven directly)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import TruthfulAgent
from repro.mechanism import VerificationMechanism
from repro.protocol import SimulatedNetwork
from repro.protocol.coordinator import (
    COORDINATOR_NAME,
    MachineNode,
    MechanismCoordinator,
    ProtocolPhase,
)
from repro.protocol.messages import BidReply, CompletionReport
from repro.system import LinearLatencyMachine, Simulator


def _setup(n: int = 3, rate: float = 6.0):
    sim = Simulator()
    network = SimulatedNetwork(sim)
    rng = np.random.default_rng(0)
    names = [f"C{i+1}" for i in range(n)]
    true_values = np.array([1.0, 2.0, 5.0])[:n]
    nodes = []
    for name, t in zip(names, true_values):
        node = MachineNode(
            name=name,
            agent=TruthfulAgent(t),
            machine=LinearLatencyMachine(name, t, rng),
            network=network,
        )
        network.register(name, node.handle)
        nodes.append(node)
    coordinator = MechanismCoordinator(
        mechanism=VerificationMechanism(),
        machine_names=names,
        arrival_rate=rate,
        network=network,
    )
    network.register(COORDINATOR_NAME, coordinator.handle)
    return sim, network, coordinator, nodes, true_values


class TestPhaseProgression:
    def test_start_requests_bids(self):
        sim, network, coordinator, nodes, _ = _setup()
        coordinator.start()
        assert coordinator.phase is ProtocolPhase.BIDDING
        sim.run()
        # Bids were answered; allocation notices went out.
        assert coordinator.phase is ProtocolPhase.EXECUTING
        assert all(n.allocated_load is not None for n in nodes)

    def test_cannot_start_twice(self):
        sim, network, coordinator, nodes, _ = _setup()
        coordinator.start()
        with pytest.raises(RuntimeError, match="cannot start"):
            coordinator.start()

    def test_allocation_matches_pr_on_bids(self):
        sim, network, coordinator, nodes, t = _setup()
        coordinator.start()
        sim.run()
        from repro.allocation import pr_loads

        expected = pr_loads(t, 6.0)
        actual = np.array([n.allocated_load for n in nodes])
        np.testing.assert_allclose(actual, expected)

    def test_reports_trigger_payments(self):
        sim, network, coordinator, nodes, _ = _setup()
        coordinator.start()
        sim.run()
        for node in nodes:
            node.machine.sojourn_times.extend([0.1, 0.2])  # fake completions
            node.report_completion()
        sim.run()
        assert coordinator.phase is ProtocolPhase.DONE
        assert coordinator.outcome is not None
        assert all(n.received_payment is not None for n in nodes)

    def test_zero_completion_falls_back_to_bid(self):
        sim, network, coordinator, nodes, t = _setup()
        coordinator.start()
        sim.run()
        for node in nodes:
            node.report_completion()  # zero jobs completed
        sim.run()
        np.testing.assert_allclose(coordinator.estimated_execution_values, t)


class TestProtocolErrors:
    def test_duplicate_bid_rejected(self):
        sim, network, coordinator, nodes, _ = _setup()
        coordinator.start()
        sim.run()
        network.send(BidReply(sender="C1", receiver=COORDINATOR_NAME, bid=1.0))
        with pytest.raises(RuntimeError, match="unexpected bid"):
            sim.run()

    def test_report_before_allocation_rejected(self):
        sim, network, coordinator, nodes, _ = _setup()
        network.send(
            CompletionReport(
                sender="C1", receiver=COORDINATOR_NAME,
                jobs_completed=1, mean_sojourn=0.5,
            )
        )
        with pytest.raises(RuntimeError, match="unexpected completion"):
            sim.run()

    def test_duplicate_report_rejected(self):
        sim, network, coordinator, nodes, _ = _setup()
        coordinator.start()
        sim.run()
        nodes[0].report_completion()
        nodes[0].report_completion()
        with pytest.raises(RuntimeError, match="duplicate report"):
            sim.run()

    def test_bids_vector_before_complete_rejected(self):
        _, _, coordinator, _, _ = _setup()
        with pytest.raises(RuntimeError, match="not complete"):
            coordinator.bids_vector()

    def test_machine_rejects_unknown_message(self):
        sim, network, coordinator, nodes, _ = _setup()
        network.send(BidReply(sender="C2", receiver="C1", bid=1.0))
        with pytest.raises(TypeError, match="cannot handle"):
            sim.run()


class TestMembershipCaching:
    def test_pending_sets_shrink_incrementally_in_order(self):
        sim, network, coordinator, nodes, _ = _setup()
        assert coordinator.pending_bidders == ["C1", "C2", "C3"]
        coordinator.phase = ProtocolPhase.BIDDING
        coordinator._on_bid(
            BidReply(sender="C2", receiver=COORDINATOR_NAME, bid=2.0)
        )
        assert coordinator.pending_bidders == ["C1", "C3"]
        assert coordinator.pending_reporters == ["C1", "C2", "C3"]

    def test_bids_vector_is_cached_and_copy_safe(self):
        sim, network, coordinator, nodes, t = _setup()
        coordinator.start()
        sim.run()
        first = coordinator.bids_vector()
        first[0] = 99.0  # mutating the returned copy must not poison the cache
        np.testing.assert_allclose(coordinator.bids_vector(), t)

    def test_pending_sets_survive_wholesale_state_restore(self):
        # The supervisor's restore path assigns _bids directly on a
        # fresh coordinator; the lazy derivation must pick that up.
        _, _, coordinator, _, _ = _setup()
        coordinator._bids = {"C1": 1.0, "C3": 5.0}
        assert coordinator.pending_bidders == ["C2"]
