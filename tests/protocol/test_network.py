"""Unit tests for the simulated network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocol import BidRequest, SimulatedNetwork
from repro.system import Simulator


class TestDelivery:
    def test_message_reaches_handler(self):
        sim = Simulator()
        network = SimulatedNetwork(sim)
        received = []
        network.register("C1", lambda msg, s: received.append(msg))
        message = BidRequest(sender="mechanism", receiver="C1")
        network.send(message)
        sim.run()
        assert received == [message]

    def test_unknown_receiver_rejected(self):
        network = SimulatedNetwork(Simulator())
        with pytest.raises(KeyError):
            network.send(BidRequest(sender="m", receiver="ghost"))

    def test_duplicate_registration_rejected(self):
        network = SimulatedNetwork(Simulator())
        network.register("C1", lambda m, s: None)
        with pytest.raises(ValueError):
            network.register("C1", lambda m, s: None)

    def test_delay_sampler_defers_delivery(self):
        sim = Simulator()
        network = SimulatedNetwork(
            sim, delay_sampler=lambda rng: 2.5, rng=np.random.default_rng(0)
        )
        times = []
        network.register("C1", lambda msg, s: times.append(s.now))
        network.send(BidRequest(sender="m", receiver="C1"))
        sim.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        network = SimulatedNetwork(
            sim, delay_sampler=lambda rng: -1.0, rng=np.random.default_rng(0)
        )
        network.register("C1", lambda m, s: None)
        with pytest.raises(ValueError):
            network.send(BidRequest(sender="m", receiver="C1"))

    def test_random_delays_preserve_per_message_independence(self):
        sim = Simulator()
        network = SimulatedNetwork(
            sim,
            delay_sampler=lambda rng: float(rng.exponential(1.0)),
            rng=np.random.default_rng(5),
        )
        times = []
        network.register("C1", lambda msg, s: times.append(s.now))
        for _ in range(20):
            network.send(BidRequest(sender="m", receiver="C1"))
        sim.run()
        assert len(set(times)) > 1  # not all delivered simultaneously


class TestAccounting:
    def test_counts_by_type(self):
        sim = Simulator()
        network = SimulatedNetwork(sim)
        network.register("C1", lambda m, s: None)
        for _ in range(3):
            network.send(BidRequest(sender="m", receiver="C1"))
        stats = network.stats()
        assert stats.total_messages == 3
        assert stats.messages_of(BidRequest) == 3

    def test_delivered_counter(self):
        sim = Simulator()
        network = SimulatedNetwork(sim)
        network.register("C1", lambda m, s: None)
        network.send(BidRequest(sender="m", receiver="C1"))
        assert network.delivered == 0
        sim.run()
        assert network.delivered == 1

    def test_unknown_type_count_is_zero(self):
        from repro.protocol import PaymentNotice

        network = SimulatedNetwork(Simulator())
        assert network.stats().messages_of(PaymentNotice) == 0
