"""Unit tests for the profiling hooks (Stopwatch and @profiled)."""

from __future__ import annotations

import itertools

import pytest

from repro.observability import (
    Instrumentation,
    Stopwatch,
    disable,
    instrumented,
    profiled,
)


@pytest.fixture(autouse=True)
def _clean_global():
    disable()
    yield
    disable()


class TestStopwatch:
    def test_measures_with_injected_clock(self):
        ticks = iter([100.0, 103.5])
        with Stopwatch(clock=lambda: next(ticks)) as watch:
            pass
        assert watch.elapsed == 3.5

    def test_records_into_active_histogram(self):
        with instrumented() as instr:
            ticks = iter([0.0, 2.0])
            with Stopwatch("block.seconds", clock=lambda: next(ticks), stage="x"):
                pass
        histogram = instr.metrics.histogram("block.seconds", stage="x")
        assert histogram.count == 1
        assert histogram.total == 2.0

    def test_without_name_records_nothing(self):
        with instrumented() as instr:
            with Stopwatch():
                pass
        assert len(instr.metrics) == 0

    def test_records_even_when_block_raises(self):
        with instrumented() as instr:
            ticks = iter([0.0, 1.0])
            with pytest.raises(ValueError):
                with Stopwatch("fail.seconds", clock=lambda: next(ticks)):
                    raise ValueError("boom")
        assert instr.metrics.histogram("fail.seconds").count == 1


class TestProfiled:
    def test_disabled_calls_pass_through(self):
        calls = []

        @profiled("work.seconds")
        def work(x):
            calls.append(x)
            return x + 1

        assert work(1) == 2
        assert calls == [1]

    def test_enabled_calls_record_durations(self):
        ticks = itertools.count()
        instr = Instrumentation(clock=lambda: float(next(ticks)))

        @profiled("work.seconds", component="demo")
        def work():
            return "done"

        with instrumented(instr):
            work()
            work()
        histogram = instr.metrics.histogram("work.seconds", component="demo")
        assert histogram.count == 2
        assert histogram.total == 2.0  # one tick per call

    def test_activation_resolved_per_call(self):
        @profiled("late.seconds")
        def work():
            return None

        work()  # disabled: no registry exists yet
        with instrumented() as instr:
            work()
        assert instr.metrics.histogram("late.seconds").count == 1

    def test_preserves_function_metadata(self):
        @profiled("meta.seconds")
        def documented():
            """Docstring survives wrapping."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Docstring survives wrapping."
