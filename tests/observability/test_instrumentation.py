"""Unit tests for the global instrumentation switchboard."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.observability import (
    Instrumentation,
    active,
    annotate,
    disable,
    enable,
    instrumented,
    observe_value,
    record_counter,
    record_gauge,
    timed_section,
    trace_span,
)
from repro.observability.instrumentation import _NULL


@pytest.fixture(autouse=True)
def _clean_global():
    """Every test starts and ends with instrumentation disabled."""
    disable()
    yield
    disable()


def _tick_instrumentation() -> Instrumentation:
    ticks = itertools.count()
    return Instrumentation(clock=lambda: float(next(ticks)))


class TestGlobalSlot:
    def test_enable_disable_roundtrip(self):
        assert active() is None
        installed = enable()
        assert active() is installed
        assert disable() is installed
        assert active() is None

    def test_instrumented_restores_previous(self):
        outer = enable()
        with instrumented() as inner:
            assert active() is inner
            assert inner is not outer
        assert active() is outer

    def test_instrumented_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with instrumented():
                raise RuntimeError("boom")
        assert active() is None

    def test_enable_accepts_custom_bundle(self):
        custom = _tick_instrumentation()
        assert enable(custom) is custom
        assert active() is custom


class TestDisabledHelpers:
    def test_all_helpers_are_noops(self):
        record_counter("c")
        record_gauge("g", 1.0)
        observe_value("h", 1.0)
        annotate("msg")
        with trace_span("s"):
            pass
        with timed_section("t"):
            pass
        # Nothing was installed, nothing recorded anywhere.
        assert active() is None

    def test_disabled_contexts_share_the_null_singleton(self):
        assert trace_span("a") is _NULL
        assert timed_section("b") is _NULL


class TestEnabledHelpers:
    def test_counter_gauge_histogram_route_to_registry(self):
        with instrumented() as instr:
            record_counter("events", kind="x")
            record_counter("events", 2.0, kind="x")
            record_gauge("depth", 7.0)
            observe_value("size", 3.0)
        assert instr.metrics.counter("events", kind="x").value == 3.0
        assert instr.metrics.gauge("depth").value == 7.0
        assert instr.metrics.histogram("size").count == 1

    def test_trace_span_and_annotate_route_to_tracer(self):
        with instrumented(_tick_instrumentation()) as instr:
            with trace_span("round", index=1):
                annotate("note", key="value")
        record = instr.tracer.finished[0]
        assert record.name == "round"
        assert record.annotations[0]["key"] == "value"

    def test_timed_section_records_seconds(self):
        with instrumented(_tick_instrumentation()) as instr:
            with timed_section("section.seconds"):
                pass
        histogram = instr.metrics.histogram("section.seconds")
        assert histogram.count == 1
        assert histogram.total == 1.0  # one clock tick

    def test_snapshot_bundles_metrics_and_spans(self):
        with instrumented(_tick_instrumentation()) as instr:
            record_counter("c")
            with trace_span("s"):
                pass
        snapshot = instr.snapshot()
        assert snapshot["counters"][0]["name"] == "c"
        assert list(snapshot["spans"]) == ["s"]
        assert snapshot["spans_dropped"] == 0


class TestWiredHotPaths:
    def test_protocol_round_records_phases_and_spans(self):
        from repro.agents import TruthfulAgent
        from repro.protocol import run_protocol

        with instrumented() as instr:
            run_protocol(
                [TruthfulAgent(1.0), TruthfulAgent(2.0)],
                3.0,
                duration=5.0,
                rng=np.random.default_rng(0),
            )
        assert sorted(instr.tracer.summary()) == ["protocol.round"]
        transitions = [
            (c["labels"]["src"], c["labels"]["dst"])
            for c in instr.metrics.snapshot()["counters"]
            if c["name"] == "protocol.phase_transitions"
        ]
        assert ("idle", "bidding") in transitions
        assert ("verifying", "done") in transitions
        # Phase changes are also annotated onto the protocol.round span.
        annotations = instr.tracer.finished[-1].annotations
        assert any(a["message"] == "protocol.phase" for a in annotations)

    def test_supervised_round_records_stage_spans_and_counters(self):
        from repro.agents import TruthfulAgent
        from repro.resilience import RoundSupervisor

        supervisor = RoundSupervisor(
            [TruthfulAgent(1.0), TruthfulAgent(2.0), TruthfulAgent(5.0)],
            6.0,
            duration=10.0,
            rng=np.random.default_rng(3),
        )
        with instrumented() as instr:
            supervisor.run(2)
        spans = instr.tracer.summary()
        for name in (
            "supervisor.round",
            "supervisor.bidding",
            "supervisor.execution",
            "supervisor.reporting",
            "supervisor.detection",
        ):
            assert spans[name]["count"] == 2
        assert instr.metrics.counter("supervisor.rounds").value == 2.0
        assert instr.metrics.counter("resilience.checkpoint.saves").value > 0
        assert instr.metrics.histogram("supervisor.jobs_routed").count == 2

    def test_chaos_round_annotates_injected_faults(self):
        from repro.agents import TruthfulAgent
        from repro.resilience import (
            ChaosHarness,
            FaultPlan,
            MachineFault,
            RoundFaults,
            RoundSupervisor,
        )

        supervisor = RoundSupervisor(
            [TruthfulAgent(t) for t in (1.0, 2.0, 5.0, 10.0)],
            6.0,
            duration=10.0,
            rng=np.random.default_rng(5),
        )
        plan = FaultPlan(
            [
                RoundFaults(
                    machine_faults={"C2": MachineFault("withhold_bid")}
                ),
                RoundFaults(),
            ]
        )
        with instrumented() as instr:
            ChaosHarness(supervisor, plan).run()
        chaos_spans = [
            s for s in instr.tracer.finished if s.name == "chaos.round"
        ]
        assert len(chaos_spans) == 2
        injected = [
            a
            for a in chaos_spans[0].annotations
            if a["message"] == "fault.injected"
        ]
        assert injected == [
            {
                "message": "fault.injected",
                "at": injected[0]["at"],
                "machine": "C2",
                "kind": "withhold_bid",
            }
        ]
        assert instr.metrics.counter("chaos.faults_injected").value == 1.0
