"""Unit tests for the span tracer and its JSONL export."""

from __future__ import annotations

import io
import itertools
import json

from repro.observability.tracing import Tracer


def _tick_tracer(**kwargs) -> Tracer:
    ticks = itertools.count()
    return Tracer(clock=lambda: float(next(ticks)), **kwargs)


class TestSpans:
    def test_nesting_records_parent_ids(self):
        tracer = _tick_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Children finish (and are appended) before their parents.
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_durations_from_injected_clock(self):
        tracer = _tick_tracer()
        with tracer.span("a"):
            pass
        assert tracer.finished[0].duration == 1.0

    def test_attributes_and_annotations(self):
        tracer = _tick_tracer()
        with tracer.span("round", index=3):
            assert tracer.annotate("retry", machine="C2") is True
        record = tracer.finished[0]
        assert record.attributes == {"index": 3}
        assert record.annotations[0]["message"] == "retry"
        assert record.annotations[0]["machine"] == "C2"

    def test_annotate_without_open_span_is_noop(self):
        tracer = _tick_tracer()
        assert tracer.annotate("orphan") is False
        assert tracer.finished == []

    def test_exception_marks_span_as_error(self):
        tracer = _tick_tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        record = tracer.finished[0]
        assert record.attributes["error"] == "RuntimeError"
        assert record.end is not None  # the span still closed

    def test_max_spans_drops_but_keeps_counting(self):
        tracer = _tick_tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.dropped == 3

    def test_current_tracks_the_stack(self):
        tracer = _tick_tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None


class TestSummary:
    def test_percentiles_per_name(self):
        tracer = Tracer(clock=lambda: 0.0)
        # Hand-build durations by driving the clock through a closure.
        times = iter([0.0, 1.0, 0.0, 3.0, 0.0, 5.0])
        tracer.clock = lambda: next(times)
        for _ in range(3):
            with tracer.span("work"):
                pass
        summary = tracer.summary()["work"]
        assert summary["count"] == 3
        assert summary["p50"] == 3.0
        assert summary["max"] == 5.0
        assert summary["total"] == 9.0


class TestExport:
    def test_jsonl_round_trips(self):
        tracer = _tick_tracer()
        with tracer.span("round", index=0):
            tracer.annotate("event", detail="x")
        lines = tracer.dumps_jsonl().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "round"
        assert record["attributes"] == {"index": 0}
        assert record["annotations"][0]["message"] == "event"
        assert record["duration"] == record["end"] - record["start"]

    def test_export_to_file_handle_and_path(self, tmp_path):
        tracer = _tick_tracer()
        with tracer.span("a"):
            pass
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 1
        assert buffer.getvalue().endswith("\n")

        path = tmp_path / "spans.jsonl"
        tracer.export_jsonl(str(path))
        assert json.loads(path.read_text().splitlines()[0])["name"] == "a"

    def test_empty_export_is_empty(self):
        tracer = _tick_tracer()
        assert tracer.dumps_jsonl() == ""
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 0
        assert buffer.getvalue() == ""
