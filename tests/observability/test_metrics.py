"""Unit tests for the metrics primitives and registry."""

from __future__ import annotations

import math

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram()
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_quantiles_exact_until_reservoir_fills(self):
        histogram = Histogram(reservoir_size=100)
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 50.5
        assert histogram.quantile(1.0) == 100.0

    def test_reservoir_stays_bounded(self):
        histogram = Histogram(reservoir_size=32)
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert len(histogram._sample) == 32

    def test_reservoir_sample_is_representative(self):
        # 10k uniform observations through a 256-slot reservoir: the
        # estimated median must land near the true median.
        histogram = Histogram(reservoir_size=256)
        for value in range(10_000):
            histogram.observe(float(value))
        assert abs(histogram.quantile(0.5) - 5_000.0) < 1_000.0

    def test_deterministic_across_runs(self):
        def fill() -> Histogram:
            histogram = Histogram(reservoir_size=16)
            for value in range(1_000):
                histogram.observe(float(value))
            return histogram

        assert fill().summary() == fill().summary()

    def test_empty_summary_has_nones(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["p99"] is None

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Histogram(reservoir_size=0)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("events", kind="a").inc()
        registry.counter("events", kind="a").inc()
        registry.counter("events", kind="b").inc()
        assert registry.counter("events", kind="a").value == 2.0
        assert registry.counter("events", kind="b").value == 1.0
        assert len(registry) == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_snapshot_sections_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.late").inc()
        registry.counter("a.early").inc(2.0)
        registry.gauge("depth").set(4.0)
        registry.histogram("latency").observe(0.25)
        snapshot = registry.snapshot()
        assert [c["name"] for c in snapshot["counters"]] == ["a.early", "z.late"]
        assert snapshot["gauges"] == [
            {"name": "depth", "labels": {}, "value": 4.0}
        ]
        assert snapshot["histograms"][0]["count"] == 1

    def test_format_series(self):
        assert format_series("plain", ()) == "plain"
        assert (
            format_series("t", (("a", "1"), ("b", "2"))) == "t{a=1,b=2}"
        )
